open Nettypes

type mode = Drop_while_pending | Queue_while_pending of int | Detour_via_cp

let mode_name = function
  | Drop_while_pending -> "pull-drop"
  | Queue_while_pending _ -> "pull-queue"
  | Detour_via_cp -> "pull-detour"

type auth = {
  nonce_check : bool;
  signatures : bool;
  sig_cpu_cost : float;
}

let no_auth =
  { nonce_check = false; signatures = false;
    sig_cpu_cost = Wire.Auth.default_sig_cpu_cost }

(* Any class-E address: never a registered RLOC, so traffic tunneled to
   a forged mapping blackholes under the ["no-such-rloc"] drop cause. *)
let attacker_rloc = Ipv4.addr_of_int 0xF000_0042

(* One in-flight resolution: an ITR (identified by its router node)
   waiting for the mapping of a destination domain.  The key it was
   inserted under is stored so every removal path uses the same one. *)
type resolution = {
  key : int * int;
  mutable queued : Packet.t list; (* newest first *)
  mutable queued_len : int; (* |queued|, kept for an O(1) overflow check *)
  mutable attempts : int; (* map-requests sent, including retransmissions *)
  mutable timer : Netsim.Engine.handle option; (* armed retry timer *)
  mutable abandoned : bool;
}

type t = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  registry : Registry.t;
  alt : Alt.t;
  mode : mode;
  name : string;
  latency_of : src:int -> dst:int -> float;
  resolution_latency :
    (router:Lispdp.Dataplane.router -> dst_domain:Topology.Domain.t -> float)
    option;
  glean_ttl : float;
  server_processing : float;
  stats : Cp_stats.t;
  glean : Glean.t;
  pending : (int * int, resolution) Hashtbl.t; (* router node, dst domain *)
  smr : bool;
  faults : Netsim.Faults.t option;
  retry : Netsim.Faults.retry option;
  lifecycle : Netsim.Lifecycle.t option;
  (* Which remote ITRs (by RLOC) cache each domain's mapping — learned
     from the tunnel headers at the domain's ETRs, used by SMR. *)
  cached_at : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  nonces : Nonce.t;
  adversary : Netsim.Adversary.t option;
  auth : auth;
  mutable dataplane : Lispdp.Dataplane.t option;
  obs : Obs.Hub.t option;
}

let create ~engine ~internet ~registry ~alt ~mode ?name ?latency_of
    ?resolution_latency ?(glean_ttl = 60.0) ?(server_processing = 0.0005)
    ?(smr = false) ?faults ?retry ?lifecycle ?nonce_rng ?adversary
    ?(auth = no_auth) ?glean_cap ?obs () =
  let latency_of =
    match latency_of with
    | Some f -> f
    | None -> fun ~src ~dst -> Alt.request_latency alt ~src ~dst
  in
  { engine; internet; registry; alt; mode;
    name = Option.value name ~default:(mode_name mode);
    latency_of; resolution_latency; glean_ttl; server_processing; smr;
    faults; retry; lifecycle; cached_at = Hashtbl.create 16;
    stats = Cp_stats.create ();
    glean = Glean.create ?cap:glean_cap (); pending = Hashtbl.create 64;
    nonces = Nonce.create ?rng:nonce_rng (); adversary; auth;
    dataplane = None; obs }

(* Asynchronous resolution work — map-reply arrivals, retry timers,
   SMR propagation — is charged to the shared "map_resolution" phase
   (the dataplane charges its synchronous calls into this control
   plane to the same phase). *)
let ph_map = Netsim.Prof.phase "map_resolution"

let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~actor ?flow kind =
  match t.obs with
  | Some hub ->
      Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor ?flow kind
  | None -> ()

let attach t dataplane =
  match t.dataplane with
  | Some _ -> invalid_arg "Pull.attach: already attached"
  | None -> t.dataplane <- Some dataplane

let dataplane_exn t =
  match t.dataplane with
  | Some dp -> dp
  | None -> invalid_arg "Pull: control plane used before attach"

let stats t = t.stats
let pending_resolutions t = Hashtbl.length t.pending

let choose_egress t ~src_domain flow =
  let borders = src_domain.Topology.Domain.borders in
  match
    Glean.lookup t.glean ~domain:src_domain.Topology.Domain.id
      ~remote_eid:flow.Flow.dst
  with
  | Some border -> border (* symmetric return through the forward ETR *)
  | None -> borders.(Flow.hash flow mod Array.length borders)

(* The map-reply source: the destination's authoritative ETR. *)
let authoritative_router t mapping =
  let rloc = Registry.authoritative_rloc mapping in
  match Topology.Builder.border_of_rloc t.internet rloc with
  | Some (_, border) -> border
  | None -> invalid_arg "Pull: registry RLOC has no border router"

let cancel_timer t resolution =
  match resolution.timer with
  | Some handle ->
      Netsim.Engine.cancel t.engine handle;
      resolution.timer <- None
  | None -> ()

(* Give up: remove the resolution and drain anything it held as counted
   drops — the pre-fix behaviour left such packets held forever. *)
let abandon t resolution ~cause =
  if not resolution.abandoned then begin
    resolution.abandoned <- true;
    cancel_timer t resolution;
    Hashtbl.remove t.pending resolution.key;
    let queued = List.rev resolution.queued in
    resolution.queued <- [];
    resolution.queued_len <- 0;
    match queued with
    | [] -> ()
    | _ :: _ ->
        let dp = dataplane_exn t in
        let node, _ = resolution.key in
        List.iter
          (fun p -> Lispdp.Dataplane.drop_held dp ~node p ~cause)
          queued
  end

let complete t resolution router =
  cancel_timer t resolution;
  Hashtbl.remove t.pending resolution.key;
  t.stats.Cp_stats.resolutions <- t.stats.Cp_stats.resolutions + 1;
  let dp = dataplane_exn t in
  let queued = List.rev resolution.queued in
  resolution.queued <- [];
  resolution.queued_len <- 0;
  List.iter (Lispdp.Dataplane.transmit_from_itr dp router) queued

(* One transmission of the map-request (initial or retransmitted).  The
   path latency is recomputed per attempt so a retransmission succeeds
   once a partition heals; the fault model is consulted for both the
   request and the reply leg at send time. *)
let rec send_attempt t resolution router dst_domain mapping ~flow () =
  let dp = dataplane_exn t in
  resolution.attempts <- resolution.attempts + 1;
  let src_id = (router.Lispdp.Dataplane.router_domain).Topology.Domain.id in
  let dst_id = dst_domain.Topology.Domain.id in
  let nonce = Nonce.fresh t.nonces in
  let request_eid =
    Ipv4.prefix_network
      (Registry.mapping_of_domain t.registry dst_id).Mapping.eid_prefix
  in
  let request =
    Wire.Codec.Map_request
      { nonce;
        source_rloc = router.Lispdp.Dataplane.border.Topology.Domain.rloc;
        eid = request_eid }
  in
  t.stats.Cp_stats.map_requests <- t.stats.Cp_stats.map_requests + 1;
  t.stats.Cp_stats.control_bytes <-
    t.stats.Cp_stats.control_bytes + Wire.Codec.size request;
  let actor =
    (router.Lispdp.Dataplane.router_domain).Topology.Domain.name ^ "-itr"
  in
  if obs_on t then
    obs_emit t ~actor ?flow (Obs.Event.Map_request { eid = request_eid });
  Alt.note_request t.alt ~src:src_id ~dst:dst_id;
  let total =
    match t.resolution_latency with
    | Some f -> f ~router ~dst_domain +. t.server_processing
    | None ->
        let request_latency = t.latency_of ~src:src_id ~dst:dst_id in
        let authoritative = authoritative_router t mapping in
        let graph = t.internet.Topology.Builder.graph in
        let requester = router.Lispdp.Dataplane.border.Topology.Domain.router in
        let reply_latency =
          match
            Topology.Graph.latency_between graph
              authoritative.Topology.Domain.router requester
          with
          | latency -> latency
          | exception Not_found -> (
              (* The requesting ITR's own uplink is down: the reply is
                 routed to the domain (any live uplink) and forwarded
                 internally. *)
              let hub =
                (router.Lispdp.Dataplane.router_domain).Topology.Domain.hub
              in
              match
                Topology.Graph.latency_between graph
                  authoritative.Topology.Domain.router hub
              with
              | to_hub ->
                  to_hub +. Topology.Graph.latency_between graph hub requester
              | exception Not_found -> infinity)
        in
        request_latency +. t.server_processing +. reply_latency
  in
  (* Lifecycle windows are consulted before any fault draw so that a
     run whose crash schedule is empty takes exactly the same RNG
     stream as one with no lifecycle at all. *)
  let server_down =
    match t.lifecycle with
    | Some lc when total < infinity ->
        Netsim.Lifecycle.is_down lc ~role:Netsim.Lifecycle.Map_server
          ~now:(Netsim.Engine.now t.engine)
    | Some _ | None -> false
  in
  if server_down && obs_on t then
    obs_emit t ~actor ?flow (Obs.Event.Cp_loss { message = "map-server-down" });
  let lost =
    if server_down then true
    else match t.faults with
    | Some faults when total < infinity ->
        let now = Netsim.Engine.now t.engine in
        if Netsim.Faults.drops_message faults ~now ~src:src_id ~dst:dst_id
        then begin
          if obs_on t then
            obs_emit t ~actor ?flow
              (Obs.Event.Cp_loss { message = "map-request" });
          true
        end
        else if
          Netsim.Faults.drops_message faults ~now ~src:dst_id ~dst:src_id
        then begin
          if obs_on t then
            obs_emit t ~actor ?flow (Obs.Event.Cp_loss { message = "map-reply" });
          true
        end
        else false
    | Some _ | None -> false
  in
  (* Off-path attacker: races the resolution with forged or replayed
     replies.  Draws happen only when the corresponding rate is
     positive, and only against a request whose reply path exists (an
     infinite [total] means the attacker has nothing to race). *)
  (match t.adversary with
  | Some adv when total < infinity ->
      let node = router.Lispdp.Dataplane.border.Topology.Domain.router in
      let race_delay =
        Float.max 0.0 (total -. Netsim.Adversary.spoof_head_start adv)
      in
      if Netsim.Adversary.forges_reply adv then begin
        (* The attacker never saw the request: it guesses the nonce and
           cannot produce a valid signature. *)
        let guessed = Netsim.Adversary.guess_nonce adv in
        ignore
          (Netsim.Engine.schedule t.engine ~delay:race_delay
             (Netsim.Prof.wrap ph_map (fun () ->
               let accepted =
                 ((not t.auth.nonce_check) || guessed = nonce)
                 && not t.auth.signatures
               in
               if obs_on t then
                 obs_emit t ~actor ?flow
                   (Obs.Event.Spoofed_reply { eid = request_eid; accepted });
               if accepted then begin
                 t.stats.Cp_stats.spoofed_accepted <-
                   t.stats.Cp_stats.spoofed_accepted + 1;
                 let forged =
                   Mapping.create ~eid_prefix:mapping.Mapping.eid_prefix
                     ~rlocs:[ Mapping.rloc attacker_rloc ]
                     ~ttl:mapping.Mapping.ttl
                 in
                 Lispdp.Dataplane.install_mapping dp router forged;
                 match Hashtbl.find_opt t.pending resolution.key with
                 | Some r when r == resolution -> complete t resolution router
                 | Some _ | None -> ()
               end
               else begin
                 t.stats.Cp_stats.spoofed_rejected <-
                   t.stats.Cp_stats.spoofed_rejected + 1;
                 if Netsim.Telemetry.enabled () then
                   Netsim.Telemetry.on_drop ~node
                     Netsim.Telemetry.Spoofed_reply_rejected
               end)))
      end;
      if Netsim.Adversary.replays_reply adv then
        (* A captured earlier genuine reply: the signature verifies, so
           only the nonce echo can tell it from a fresh answer. *)
        ignore
          (Netsim.Engine.schedule t.engine ~delay:race_delay
             (Netsim.Prof.wrap ph_map (fun () ->
               let accepted = not t.auth.nonce_check in
               if obs_on t then
                 obs_emit t ~actor ?flow
                   (Obs.Event.Replayed_reply { eid = request_eid; accepted });
               if accepted then begin
                 t.stats.Cp_stats.replayed_accepted <-
                   t.stats.Cp_stats.replayed_accepted + 1;
                 Lispdp.Dataplane.install_mapping dp router mapping;
                 match Hashtbl.find_opt t.pending resolution.key with
                 | Some r when r == resolution -> complete t resolution router
                 | Some _ | None -> ()
               end
               else begin
                 t.stats.Cp_stats.replayed_rejected <-
                   t.stats.Cp_stats.replayed_rejected + 1;
                 if Netsim.Telemetry.enabled () then
                   Netsim.Telemetry.on_drop ~node
                     Netsim.Telemetry.Replayed_reply_rejected
               end)))
  | Some _ | None -> ());
  if total < infinity && not lost then begin
    let jitter =
      match t.faults with
      | Some faults -> Netsim.Faults.extra_delay faults
      | None -> 0.0
    in
    (* Signed replies pay a per-packet verification cost (lands in
       T_map_resol) and carry the signature option on the wire. *)
    let sig_cost = if t.auth.signatures then t.auth.sig_cpu_cost else 0.0 in
    ignore
      (Netsim.Engine.schedule t.engine ~delay:(total +. jitter +. sig_cost)
         (Netsim.Prof.wrap ph_map (fun () ->
           t.stats.Cp_stats.map_replies <- t.stats.Cp_stats.map_replies + 1;
           t.stats.Cp_stats.control_bytes <-
             t.stats.Cp_stats.control_bytes
             + Wire.Codec.size (Wire.Codec.Map_reply { nonce; mapping })
             + (if t.auth.signatures then Wire.Auth.signature_bytes else 0);
           if obs_on t then
             obs_emit t ~actor ?flow (Obs.Event.Map_reply { eid = request_eid });
           Lispdp.Dataplane.install_mapping dp router mapping;
           match Hashtbl.find_opt t.pending resolution.key with
           | Some r when r == resolution -> complete t resolution router
           | Some _ | None ->
               (* A late or duplicate reply: the mapping is installed but
                  there is no (or a newer) resolution to complete. *)
               ())))
  end;
  match t.retry with
  | None ->
      if total = infinity || lost then
        (* No reply will ever come and retransmission is off: give up
           now.  Queued packets become counted drops (pre-fix they were
           silently held forever) and a later miss starts over. *)
        abandon t resolution ~cause:Netsim.Telemetry.Resolution_abandoned
  | Some retry ->
      let delay = Netsim.Faults.retry_delay retry ~attempt:resolution.attempts in
      resolution.timer <-
        Some
          (Netsim.Engine.schedule t.engine ~delay
             (Netsim.Prof.wrap ph_map (fun () ->
               resolution.timer <- None;
               if not resolution.abandoned then
                 if resolution.attempts > retry.Netsim.Faults.budget then begin
                   t.stats.Cp_stats.timeouts <- t.stats.Cp_stats.timeouts + 1;
                   if obs_on t then
                     obs_emit t ~actor ?flow
                       (Obs.Event.Cp_timeout
                          { eid = request_eid; message = "map-request" });
                   abandon t resolution
                     ~cause:Netsim.Telemetry.Resolution_timeout
                 end
                 else begin
                   t.stats.Cp_stats.retransmissions <-
                     t.stats.Cp_stats.retransmissions + 1;
                   if obs_on t then
                     obs_emit t ~actor ?flow
                       (Obs.Event.Cp_retry
                          { eid = request_eid; attempt = resolution.attempts;
                            message = "map-request" });
                   send_attempt t resolution router dst_domain mapping ~flow ()
                 end)))

let handle_miss t router packet =
  let dst = packet.Packet.flow.Flow.dst in
  match Topology.Builder.domain_of_eid t.internet dst with
  | None -> Lispdp.Dataplane.Miss_drop Netsim.Telemetry.No_such_eid_domain
  | Some dst_domain -> (
      let mapping = Registry.mapping_of_domain t.registry dst_domain.Topology.Domain.id in
      let key =
        (router.Lispdp.Dataplane.border.Topology.Domain.router,
         dst_domain.Topology.Domain.id)
      in
      let resolution =
        match Hashtbl.find_opt t.pending key with
        | Some r -> r
        | None ->
            let r =
              { key; queued = []; queued_len = 0; attempts = 0; timer = None;
                abandoned = false }
            in
            Hashtbl.replace t.pending key r;
            send_attempt t r router dst_domain mapping
              ~flow:
                (if obs_on t then
                   Some (Obs.Event.flow_id packet.Packet.flow)
                 else None)
              ();
            r
      in
      match t.mode with
      | Drop_while_pending ->
          Lispdp.Dataplane.Miss_drop Netsim.Telemetry.Mapping_resolution_drop
      | Queue_while_pending limit ->
          (* [send_attempt] may have abandoned synchronously (unreachable
             destination, no retry): never queue into a dead record. *)
          if resolution.abandoned then
            Lispdp.Dataplane.Miss_drop Netsim.Telemetry.Resolution_abandoned
          else if resolution.queued_len >= limit then
            Lispdp.Dataplane.Miss_drop
              Netsim.Telemetry.Resolution_queue_overflow
          else begin
            resolution.queued <- packet :: resolution.queued;
            resolution.queued_len <- resolution.queued_len + 1;
            Lispdp.Dataplane.Miss_hold
          end
      | Detour_via_cp ->
          (* The data packet rides the mapping overlay to the
             destination's authoritative ETR. *)
          let dp = dataplane_exn t in
          let etr =
            Lispdp.Dataplane.router_for_border dp (authoritative_router t mapping)
          in
          let src_id = (router.Lispdp.Dataplane.router_domain).Topology.Domain.id in
          let overlay =
            t.latency_of ~src:src_id ~dst:dst_domain.Topology.Domain.id
          in
          t.stats.Cp_stats.detoured_packets <-
            t.stats.Cp_stats.detoured_packets + 1;
          t.stats.Cp_stats.control_bytes <-
            t.stats.Cp_stats.control_bytes + Packet.size packet;
          Lispdp.Dataplane.deliver_via dp etr packet ~extra_delay:overlay;
          Lispdp.Dataplane.Miss_hold)

let note_etr_packet t router ~outer_src packet =
  match outer_src with
  | None -> ()
  | Some itr_rloc ->
      let dp = dataplane_exn t in
      let src_eid = packet.Packet.flow.Flow.src in
      let domain = router.Lispdp.Dataplane.router_domain in
      if t.smr then begin
        let holders =
          match Hashtbl.find_opt t.cached_at domain.Topology.Domain.id with
          | Some set -> set
          | None ->
              let set = Hashtbl.create 8 in
              Hashtbl.replace t.cached_at domain.Topology.Domain.id set;
              set
        in
        Hashtbl.replace holders (Ipv4.addr_to_int itr_rloc) ()
      end;
      Glean.note t.glean ~domain:domain.Topology.Domain.id ~remote_eid:src_eid
        ~border:router.Lispdp.Dataplane.border;
      (* Host route toward the remote ITR so the reverse tunnel is
         symmetric without a resolution. *)
      let gleaned =
        Mapping.create ~eid_prefix:(Ipv4.prefix src_eid 32)
          ~rlocs:[ Mapping.rloc itr_rloc ] ~ttl:t.glean_ttl
      in
      Lispdp.Dataplane.install_mapping dp router
        ~provenance:Lispdp.Map_cache.Gleaned gleaned

let smr_bytes = 24

let notify_mapping_change t ~domain =
  if t.smr then
    match Hashtbl.find_opt t.cached_at domain with
    | None -> ()
    | Some holders ->
        let dp = dataplane_exn t in
        let prefix =
          (Registry.mapping_of_domain t.registry domain).Mapping.eid_prefix
        in
        let graph = t.internet.Topology.Builder.graph in
        let speakers =
          (* Any live border of the changed domain can emit the SMRs. *)
          t.internet.Topology.Builder.domains.(domain).Topology.Domain.borders
        in
        Hashtbl.iter
          (fun rloc_int () ->
            match Lispdp.Dataplane.router_of_rloc dp (Ipv4.addr_of_int rloc_int) with
            | None -> ()
            | Some holder ->
                let target = holder.Lispdp.Dataplane.border.Topology.Domain.router in
                let latency =
                  Array.fold_left
                    (fun acc b ->
                      match
                        Topology.Graph.latency_between graph
                          b.Topology.Domain.router target
                      with
                      | l -> Float.min acc l
                      | exception Not_found -> acc)
                    infinity speakers
                in
                if latency < infinity then begin
                  t.stats.Cp_stats.push_messages <-
                    t.stats.Cp_stats.push_messages + 1;
                  t.stats.Cp_stats.control_bytes <-
                    t.stats.Cp_stats.control_bytes + smr_bytes;
                  ignore
                    (Netsim.Engine.schedule t.engine ~delay:latency
                       (Netsim.Prof.wrap ph_map (fun () ->
                            (* The solicit invalidates the site mapping
                               and any gleaned host routes under it. *)
                            ignore
                              (Lispdp.Map_cache.remove_covered
                                 holder.Lispdp.Dataplane.cache prefix))))
                end)
          holders;
        Hashtbl.remove t.cached_at domain

let control_plane t =
  { Lispdp.Dataplane.cp_name = t.name;
    cp_choose_egress = (fun ~src_domain flow -> choose_egress t ~src_domain flow);
    cp_handle_miss = (fun router packet -> handle_miss t router packet);
    cp_note_etr_packet =
      (fun router ~outer_src packet -> note_etr_packet t router ~outer_src packet) }
