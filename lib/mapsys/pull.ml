open Nettypes

type mode = Drop_while_pending | Queue_while_pending of int | Detour_via_cp

let mode_name = function
  | Drop_while_pending -> "pull-drop"
  | Queue_while_pending _ -> "pull-queue"
  | Detour_via_cp -> "pull-detour"

(* One in-flight resolution: an ITR (identified by its router node)
   waiting for the mapping of a destination domain. *)
type resolution = { mutable queued : Packet.t list (* newest first *) }

type t = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  registry : Registry.t;
  alt : Alt.t;
  mode : mode;
  name : string;
  latency_of : src:int -> dst:int -> float;
  resolution_latency :
    (router:Lispdp.Dataplane.router -> dst_domain:Topology.Domain.t -> float)
    option;
  glean_ttl : float;
  server_processing : float;
  stats : Cp_stats.t;
  glean : Glean.t;
  pending : (int * int, resolution) Hashtbl.t; (* router node, dst domain *)
  smr : bool;
  (* Which remote ITRs (by RLOC) cache each domain's mapping — learned
     from the tunnel headers at the domain's ETRs, used by SMR. *)
  cached_at : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable nonce : int;
  mutable dataplane : Lispdp.Dataplane.t option;
  obs : Obs.Hub.t option;
}

let create ~engine ~internet ~registry ~alt ~mode ?name ?latency_of
    ?resolution_latency ?(glean_ttl = 60.0) ?(server_processing = 0.0005)
    ?(smr = false) ?obs () =
  let latency_of =
    match latency_of with
    | Some f -> f
    | None -> fun ~src ~dst -> Alt.request_latency alt ~src ~dst
  in
  { engine; internet; registry; alt; mode;
    name = Option.value name ~default:(mode_name mode);
    latency_of; resolution_latency; glean_ttl; server_processing; smr;
    cached_at = Hashtbl.create 16; stats = Cp_stats.create ();
    glean = Glean.create (); pending = Hashtbl.create 64; nonce = 0;
    dataplane = None; obs }

let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~actor ?flow kind =
  match t.obs with
  | Some hub ->
      Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor ?flow kind
  | None -> ()

let attach t dataplane =
  match t.dataplane with
  | Some _ -> invalid_arg "Pull.attach: already attached"
  | None -> t.dataplane <- Some dataplane

let dataplane_exn t =
  match t.dataplane with
  | Some dp -> dp
  | None -> invalid_arg "Pull: control plane used before attach"

let stats t = t.stats
let pending_resolutions t = Hashtbl.length t.pending

let choose_egress t ~src_domain flow =
  let borders = src_domain.Topology.Domain.borders in
  match
    Glean.lookup t.glean ~domain:src_domain.Topology.Domain.id
      ~remote_eid:flow.Flow.dst
  with
  | Some border -> border (* symmetric return through the forward ETR *)
  | None -> borders.(Flow.hash flow mod Array.length borders)

(* The map-reply source: the destination's authoritative ETR. *)
let authoritative_router t mapping =
  let rloc = Registry.authoritative_rloc mapping in
  match Topology.Builder.border_of_rloc t.internet rloc with
  | Some (_, border) -> border
  | None -> invalid_arg "Pull: registry RLOC has no border router"

let start_resolution t router dst_domain mapping ?flow () =
  let dp = dataplane_exn t in
  let src_id =
    (router.Lispdp.Dataplane.router_domain).Topology.Domain.id
  in
  let dst_id = dst_domain.Topology.Domain.id in
  t.nonce <- (t.nonce + 1) land 0xFFFFFFFF;
  let nonce = t.nonce in
  let request_eid =
    Ipv4.prefix_network
      (Registry.mapping_of_domain t.registry dst_id).Mapping.eid_prefix
  in
  let request =
    Wire.Codec.Map_request
      { nonce;
        source_rloc = router.Lispdp.Dataplane.border.Topology.Domain.rloc;
        eid = request_eid }
  in
  t.stats.Cp_stats.map_requests <- t.stats.Cp_stats.map_requests + 1;
  t.stats.Cp_stats.control_bytes <-
    t.stats.Cp_stats.control_bytes + Wire.Codec.size request;
  let actor =
    (router.Lispdp.Dataplane.router_domain).Topology.Domain.name ^ "-itr"
  in
  if obs_on t then
    obs_emit t ~actor ?flow (Obs.Event.Map_request { eid = request_eid });
  Alt.note_request t.alt ~src:src_id ~dst:dst_id;
  let total =
    match t.resolution_latency with
    | Some f -> f ~router ~dst_domain +. t.server_processing
    | None ->
        let request_latency = t.latency_of ~src:src_id ~dst:dst_id in
        let authoritative = authoritative_router t mapping in
        let graph = t.internet.Topology.Builder.graph in
        let requester = router.Lispdp.Dataplane.border.Topology.Domain.router in
        let reply_latency =
          match
            Topology.Graph.latency_between graph
              authoritative.Topology.Domain.router requester
          with
          | latency -> latency
          | exception Not_found -> (
              (* The requesting ITR's own uplink is down: the reply is
                 routed to the domain (any live uplink) and forwarded
                 internally. *)
              let hub =
                (router.Lispdp.Dataplane.router_domain).Topology.Domain.hub
              in
              match
                Topology.Graph.latency_between graph
                  authoritative.Topology.Domain.router hub
              with
              | to_hub ->
                  to_hub +. Topology.Graph.latency_between graph hub requester
              | exception Not_found -> infinity)
        in
        request_latency +. t.server_processing +. reply_latency
  in
  if total = infinity then
    (* The whole domain is cut off; abandon the resolution (packets are
       already dropping, and a later miss will retry). *)
    Hashtbl.remove t.pending
      (router.Lispdp.Dataplane.border.Topology.Domain.router,
       dst_id)
  else
  ignore
    (Netsim.Engine.schedule t.engine ~delay:total (fun () ->
         t.stats.Cp_stats.map_replies <- t.stats.Cp_stats.map_replies + 1;
         t.stats.Cp_stats.resolutions <- t.stats.Cp_stats.resolutions + 1;
         t.stats.Cp_stats.control_bytes <-
           t.stats.Cp_stats.control_bytes
           + Wire.Codec.size (Wire.Codec.Map_reply { nonce; mapping });
         if obs_on t then
           obs_emit t ~actor ?flow
             (Obs.Event.Map_reply { eid = request_eid });
         Lispdp.Dataplane.install_mapping dp router mapping;
         let key =
           (router.Lispdp.Dataplane.border.Topology.Domain.router, dst_id)
         in
         match Hashtbl.find_opt t.pending key with
         | Some resolution ->
             Hashtbl.remove t.pending key;
             List.iter
               (Lispdp.Dataplane.transmit_from_itr dp router)
               (List.rev resolution.queued)
         | None -> ()))

let handle_miss t router packet =
  let dst = packet.Packet.flow.Flow.dst in
  match Topology.Builder.domain_of_eid t.internet dst with
  | None -> Lispdp.Dataplane.Miss_drop "no-such-eid-domain"
  | Some dst_domain -> (
      let mapping = Registry.mapping_of_domain t.registry dst_domain.Topology.Domain.id in
      let key =
        (router.Lispdp.Dataplane.border.Topology.Domain.router,
         dst_domain.Topology.Domain.id)
      in
      let resolution =
        match Hashtbl.find_opt t.pending key with
        | Some r -> r
        | None ->
            let r = { queued = [] } in
            Hashtbl.replace t.pending key r;
            start_resolution t router dst_domain mapping
              ?flow:
                (if obs_on t then
                   Some (Obs.Event.flow_id packet.Packet.flow)
                 else None)
              ();
            r
      in
      match t.mode with
      | Drop_while_pending -> Lispdp.Dataplane.Miss_drop "mapping-resolution-drop"
      | Queue_while_pending limit ->
          if List.length resolution.queued >= limit then
            Lispdp.Dataplane.Miss_drop "resolution-queue-overflow"
          else begin
            resolution.queued <- packet :: resolution.queued;
            Lispdp.Dataplane.Miss_hold
          end
      | Detour_via_cp ->
          (* The data packet rides the mapping overlay to the
             destination's authoritative ETR. *)
          let dp = dataplane_exn t in
          let etr =
            Lispdp.Dataplane.router_for_border dp (authoritative_router t mapping)
          in
          let src_id = (router.Lispdp.Dataplane.router_domain).Topology.Domain.id in
          let overlay =
            t.latency_of ~src:src_id ~dst:dst_domain.Topology.Domain.id
          in
          t.stats.Cp_stats.detoured_packets <-
            t.stats.Cp_stats.detoured_packets + 1;
          t.stats.Cp_stats.control_bytes <-
            t.stats.Cp_stats.control_bytes + Packet.size packet;
          Lispdp.Dataplane.deliver_via dp etr packet ~extra_delay:overlay;
          Lispdp.Dataplane.Miss_hold)

let note_etr_packet t router ~outer_src packet =
  match outer_src with
  | None -> ()
  | Some itr_rloc ->
      let dp = dataplane_exn t in
      let src_eid = packet.Packet.flow.Flow.src in
      let domain = router.Lispdp.Dataplane.router_domain in
      if t.smr then begin
        let holders =
          match Hashtbl.find_opt t.cached_at domain.Topology.Domain.id with
          | Some set -> set
          | None ->
              let set = Hashtbl.create 8 in
              Hashtbl.replace t.cached_at domain.Topology.Domain.id set;
              set
        in
        Hashtbl.replace holders (Ipv4.addr_to_int itr_rloc) ()
      end;
      Glean.note t.glean ~domain:domain.Topology.Domain.id ~remote_eid:src_eid
        ~border:router.Lispdp.Dataplane.border;
      (* Host route toward the remote ITR so the reverse tunnel is
         symmetric without a resolution. *)
      let gleaned =
        Mapping.create ~eid_prefix:(Ipv4.prefix src_eid 32)
          ~rlocs:[ Mapping.rloc itr_rloc ] ~ttl:t.glean_ttl
      in
      Lispdp.Dataplane.install_mapping dp router gleaned

let smr_bytes = 24

let notify_mapping_change t ~domain =
  if t.smr then
    match Hashtbl.find_opt t.cached_at domain with
    | None -> ()
    | Some holders ->
        let dp = dataplane_exn t in
        let prefix =
          (Registry.mapping_of_domain t.registry domain).Mapping.eid_prefix
        in
        let graph = t.internet.Topology.Builder.graph in
        let speakers =
          (* Any live border of the changed domain can emit the SMRs. *)
          t.internet.Topology.Builder.domains.(domain).Topology.Domain.borders
        in
        Hashtbl.iter
          (fun rloc_int () ->
            match Lispdp.Dataplane.router_of_rloc dp (Ipv4.addr_of_int rloc_int) with
            | None -> ()
            | Some holder ->
                let target = holder.Lispdp.Dataplane.border.Topology.Domain.router in
                let latency =
                  Array.fold_left
                    (fun acc b ->
                      match
                        Topology.Graph.latency_between graph
                          b.Topology.Domain.router target
                      with
                      | l -> Float.min acc l
                      | exception Not_found -> acc)
                    infinity speakers
                in
                if latency < infinity then begin
                  t.stats.Cp_stats.push_messages <-
                    t.stats.Cp_stats.push_messages + 1;
                  t.stats.Cp_stats.control_bytes <-
                    t.stats.Cp_stats.control_bytes + smr_bytes;
                  ignore
                    (Netsim.Engine.schedule t.engine ~delay:latency (fun () ->
                         (* The solicit invalidates the site mapping and
                            any gleaned host routes under it. *)
                         ignore
                           (Lispdp.Map_cache.remove_covered
                              holder.Lispdp.Dataplane.cache prefix)))
                end)
          holders;
        Hashtbl.remove t.cached_at domain

let control_plane t =
  { Lispdp.Dataplane.cp_name = t.name;
    cp_choose_egress = (fun ~src_domain flow -> choose_egress t ~src_domain flow);
    cp_handle_miss = (fun router packet -> handle_miss t router packet);
    cp_note_etr_packet =
      (fun router ~outer_src packet -> note_etr_packet t router ~outer_src packet) }
