type t = {
  pull : Pull.t;
  internet : Topology.Builder.t;
  registry : Registry.t;
}

let create ~engine ~internet ~registry ~alt ?(mode = Pull.Drop_while_pending)
    ?(mr_provider = 0) ?(ddt_hop_latency = 0.010) ?faults ?retry ?nonce_rng
    ?adversary ?auth ?glean_cap ?obs () =
  if mr_provider < 0 || mr_provider >= Array.length internet.Topology.Builder.providers
  then invalid_arg "Msmr.create: unknown provider";
  if ddt_hop_latency <= 0.0 then
    invalid_arg "Msmr.create: non-positive DDT hop latency";
  let mr_node = internet.Topology.Builder.providers.(mr_provider).Topology.Builder.core in
  let graph = internet.Topology.Builder.graph in
  (* ITR -> MR, the delegation walk inside the mapping system, and the
     map-server's proxy reply MR -> ITR. *)
  let resolution_latency ~router ~dst_domain =
    ignore dst_domain;
    let itr = router.Lispdp.Dataplane.border.Topology.Domain.router in
    let leg a b =
      match Topology.Graph.latency_between graph a b with
      | l -> l
      | exception Not_found -> infinity
    in
    leg itr mr_node
    +. (float_of_int (Alt.depth alt) *. ddt_hop_latency)
    +. leg mr_node itr
  in
  let pull =
    Pull.create ~engine ~internet ~registry ~alt ~mode ~name:"msmr"
      ~resolution_latency ?faults ?retry ?nonce_rng ?adversary ?auth
      ?glean_cap ?obs ()
  in
  { pull; internet; registry }

let control_plane t = Pull.control_plane t.pull
let stats t = Pull.stats t.pull

let resolver_node t =
  t.internet.Topology.Builder.providers.(0).Topology.Builder.core

(* One map-register per border router, sized as a one-mapping database
   transfer. *)
let refresh_registrations t =
  let stats = Pull.stats t.pull in
  Array.iter
    (fun domain ->
      let mapping =
        Registry.mapping_of_domain t.registry domain.Topology.Domain.id
      in
      let bytes =
        Wire.Codec.size (Wire.Codec.Database_push { mappings = [ mapping ] })
      in
      Array.iter
        (fun _border ->
          stats.Cp_stats.push_messages <- stats.Cp_stats.push_messages + 1;
          stats.Cp_stats.control_bytes <- stats.Cp_stats.control_bytes + bytes)
        domain.Topology.Domain.borders)
    t.internet.Topology.Builder.domains

let attach t dataplane =
  Pull.attach t.pull dataplane;
  refresh_registrations t
