(** Symmetric-return bookkeeping (LISP gleaning).

    Plain LISP reuses a flow's forward ETR as the reverse-direction ITR
    to avoid a second mapping resolution — the inbound-TE limitation the
    paper attacks.  This table records, per domain, which border received
    traffic from a remote EID, so the baseline control planes can route
    the reverse flow out through that same border.

    Because the table is populated from unauthenticated data-packet
    source fields, an EID-scan flood can grow it without bound; [cap]
    bounds the population with oldest-first (FIFO) eviction. *)

type t

val create : ?cap:int -> unit -> t
(** [cap], when given, must be positive and bounds the number of live
    entries: a note for a brand-new key beyond the cap evicts the
    oldest-noted live key first.  Unbounded by default. *)

val note :
  t -> domain:int -> remote_eid:Nettypes.Ipv4.addr -> border:Topology.Domain.border -> unit
(** Remember that [domain] last heard from [remote_eid] through
    [border].  Re-noting an existing key replaces the border without
    changing its eviction age. *)

val lookup :
  t -> domain:int -> remote_eid:Nettypes.Ipv4.addr -> Topology.Domain.border option

val entries : t -> int

val cap : t -> int option

val evictions : t -> int
(** Entries dropped by the cap since creation (or the last {!clear}). *)

val clear : t -> unit
