(* The counter this replaces made nonces trivially predictable: an
   off-path attacker observing one map-request could forge the reply to
   the next.  Draws come from a dedicated stream so compiling the
   module in (or enabling nonce checks) never perturbs any other
   stream's sequence. *)

type t = { rng : Netsim.Rng.t }

let bound = 0x1_0000_0000 (* 32-bit nonce field, as in the LISP header *)

let create ?rng () =
  match rng with
  | Some rng -> { rng }
  | None -> { rng = Netsim.Rng.create 0x4E4F4E43 (* "NONC" *) }

let fresh t = Netsim.Rng.int t.rng bound
