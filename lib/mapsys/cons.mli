(** CONS-like hierarchical control plane.

    CONS resolves mappings through a content-distribution hierarchy that
    caches answers at intermediate servers: the first resolution of a
    destination anywhere in the internet pays the full hierarchy
    traversal, later resolutions (by anyone) find the answer cached at
    mid-level and pay roughly half.  Data packets are dropped while a
    resolution is pending, as in the CONS draft.

    Implemented as a {!Pull} instance with a popularity-aware latency
    model, so the data-plane behaviour and statistics are directly
    comparable with the other pull variants. *)

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  registry:Registry.t ->
  alt:Alt.t ->
  ?cache_speedup:float ->
  ?faults:Netsim.Faults.t ->
  ?retry:Netsim.Faults.retry ->
  ?nonce_rng:Netsim.Rng.t ->
  ?adversary:Netsim.Adversary.t ->
  ?auth:Pull.auth ->
  ?glean_cap:int ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [alt] provides the hierarchy geometry (CONS and ALT share the
    aggregation-tree shape); [cache_speedup] (default 0.5) multiplies
    the resolution latency once a destination's mapping is warm anywhere
    in the hierarchy.  [faults]/[retry]/[nonce_rng]/[adversary]/[auth]/
    [glean_cap] behave as in {!Pull.create}. *)

val control_plane : t -> Lispdp.Dataplane.control_plane
val attach : t -> Lispdp.Dataplane.t -> unit
val stats : t -> Cp_stats.t

val warm_destinations : t -> int
(** Destination domains whose mapping the hierarchy has cached. *)
