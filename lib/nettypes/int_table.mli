(** Flat hash table keyed by non-negative [int]s.

    Open addressing with linear probing over plain arrays: a lookup is
    a multiplicative hash plus a short probe over contiguous ints, with
    no per-binding box, bucket cell or polymorphic-hash call — built
    for the simulator's hot paths, where keys are packed addresses or
    prefix encodings and [Hashtbl]'s generic machinery shows up in the
    profile.

    Keys must be [>= 0] (negative values are the table's internal
    sentinels); [add] raises otherwise.  Not resistant to adversarial
    key sets — this is a simulator, keys come from address allocation
    patterns. *)

type 'a t

val create : ?initial:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty table.  [dummy] fills empty value
    cells; it is never returned from lookups.  [initial] sizes the
    table for an expected binding count (it still grows on demand). *)

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val add : 'a t -> int -> 'a -> unit
(** Insert or replace the binding for a key.
    @raise Invalid_argument on a negative key. *)

val remove : 'a t -> int -> unit
(** No-op when the key is absent.  Deletion leaves a tombstone; once
    tombstones outnumber live bindings the table rehashes in place (and
    shrinks), so probe lengths stay bounded through removal-heavy
    phases and [tombstones t <= max 1 (length t)] holds between
    operations. *)

val length : 'a t -> int
(** Number of bindings. *)

val tombstones : 'a t -> int
(** Number of tombstone slots currently in the table (deleted bindings
    not yet reclaimed by a rehash). *)

val probe_length : 'a t -> int -> int
(** Number of slots a lookup of this key inspects, counting the final
    hit or empty slot — the table's probe cost for that key.  Meant for
    tests and diagnostics. *)

val iter : 'a t -> f:(int -> 'a -> unit) -> unit
(** Visit bindings in unspecified order. *)

val clear : 'a t -> unit
