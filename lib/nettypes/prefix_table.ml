(* Binary trie over address bits, most significant bit first.  Each node
   optionally carries the value bound to the prefix that ends there. *)

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { mutable root : 'a node; mutable size : int }

let fresh_node () = { value = None; zero = None; one = None }
let create () = { root = fresh_node (); size = 0 }

let bit_of addr i =
  (* Bit [i] counted from the most significant (i = 0 is bit 31). *)
  Ipv4.addr_to_int addr lsr (31 - i) land 1

let add t prefix v =
  let network = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_length prefix in
  let rec descend node depth =
    if depth = len then begin
      if node.value = None then t.size <- t.size + 1;
      node.value <- Some v
    end
    else begin
      let child =
        if bit_of network depth = 0 then (
          match node.zero with
          | Some c -> c
          | None ->
              let c = fresh_node () in
              node.zero <- Some c;
              c)
        else
          match node.one with
          | Some c -> c
          | None ->
              let c = fresh_node () in
              node.one <- Some c;
              c
      in
      descend child (depth + 1)
    end
  in
  descend t.root 0

let remove t prefix =
  let network = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_length prefix in
  let rec descend node depth =
    if depth = len then begin
      if node.value <> None then t.size <- t.size - 1;
      node.value <- None
    end
    else
      let child = if bit_of network depth = 0 then node.zero else node.one in
      match child with None -> () | Some c -> descend c (depth + 1)
  in
  descend t.root 0

let find_exact t prefix =
  let network = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_length prefix in
  let rec descend node depth =
    if depth = len then node.value
    else
      let child = if bit_of network depth = 0 then node.zero else node.one in
      match child with None -> None | Some c -> descend c (depth + 1)
  in
  descend t.root 0

let lookup t addr =
  let rec descend node depth best =
    let best =
      match node.value with
      | Some v -> Some (Ipv4.prefix addr depth, v)
      | None -> best
    in
    if depth = 32 then best
    else
      let child = if bit_of addr depth = 0 then node.zero else node.one in
      match child with None -> best | Some c -> descend c (depth + 1) best
  in
  descend t.root 0 None

let lookup_value t addr = Option.map snd (lookup t addr)

let covering t prefix =
  let network = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_length prefix in
  let rec descend node depth best =
    let best =
      match node.value with
      | Some v -> Some (Ipv4.prefix network depth, v)
      | None -> best
    in
    if depth = len then best
    else
      let child = if bit_of network depth = 0 then node.zero else node.one in
      match child with None -> best | Some c -> descend c (depth + 1) best
  in
  descend t.root 0 None

let length t = t.size
let is_empty t = t.size = 0

let fold t ~init ~f =
  (* Depth-first, zero branch before one branch, so bindings come out in
     ascending (network, length) order. *)
  let rec walk node depth bits acc =
    let acc =
      match node.value with
      | Some v ->
          let network = Ipv4.addr_of_int (bits lsl (32 - depth) land 0xFFFFFFFF) in
          f (Ipv4.prefix network depth) v acc
      | None -> acc
    in
    let acc =
      match node.zero with
      | Some c -> walk c (depth + 1) (bits lsl 1) acc
      | None -> acc
    in
    match node.one with
    | Some c -> walk c (depth + 1) ((bits lsl 1) lor 1) acc
    | None -> acc
  in
  walk t.root 0 0 init

let fold_covered t prefix ~init ~f =
  let network = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_length prefix in
  (* Same walk as [fold], but started at the node the prefix ends on:
     only the covered subtree is visited, so the cost is proportional
     to the bindings under the prefix, not the whole table. *)
  let rec walk node depth bits acc =
    let acc =
      match node.value with
      | Some v ->
          let network = Ipv4.addr_of_int (bits lsl (32 - depth) land 0xFFFFFFFF) in
          f (Ipv4.prefix network depth) v acc
      | None -> acc
    in
    let acc =
      match node.zero with
      | Some c -> walk c (depth + 1) (bits lsl 1) acc
      | None -> acc
    in
    match node.one with
    | Some c -> walk c (depth + 1) ((bits lsl 1) lor 1) acc
    | None -> acc
  in
  let rec descend node depth =
    if depth = len then
      walk node len (Ipv4.addr_to_int network lsr (32 - len)) init
    else
      let child = if bit_of network depth = 0 then node.zero else node.one in
      match child with None -> init | Some c -> descend c (depth + 1)
  in
  descend t.root 0

let iter t ~f = fold t ~init:() ~f:(fun p v () -> f p v)
let to_list t = List.rev (fold t ~init:[] ~f:(fun p v acc -> (p, v) :: acc))

let clear t =
  t.root <- fresh_node ();
  t.size <- 0
