(* Open-addressing int-keyed table: linear probing, power-of-two
   capacity, tombstone deletion.  Keys are hashed with a Fibonacci
   multiplier so clustered key ranges (sequential addresses) spread
   across the table. *)

let empty_key = -1
let tomb_key = -2

type 'a t = {
  dummy : 'a;
  mutable keys : int array;
  mutable vals : 'a array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int;
  mutable tombs : int;
}

let fib = 0x2545F4914F6CDD1D

let slot_of t key = key * fib land max_int land t.mask

let rec capacity_for n cap = if cap >= n then cap else capacity_for n (2 * cap)

let create ?(initial = 16) ~dummy () =
  (* Size so [initial] bindings fit under the 1/2 load factor. *)
  let cap = capacity_for (2 * Stdlib.max 1 initial) 16 in
  { dummy;
    keys = Array.make cap empty_key;
    vals = Array.make cap dummy;
    mask = cap - 1;
    live = 0;
    tombs = 0 }

let length t = t.live

(* Probe for [key]; returns its slot or [-1] when absent. *)
let find_slot t key =
  let i = ref (slot_of t key) in
  let result = ref (-3) in
  while !result = -3 do
    let k = Array.unsafe_get t.keys !i in
    if k = key then result := !i
    else if k = empty_key then result := -1
    else i := (!i + 1) land t.mask
  done;
  !result

let find t key =
  let s = find_slot t key in
  if s < 0 then None else Some (Array.unsafe_get t.vals s)

let mem t key = find_slot t key >= 0

let rehash t cap =
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  t.tombs <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ref (slot_of t k) in
        while Array.unsafe_get t.keys !j <> empty_key do
          j := (!j + 1) land t.mask
        done;
        t.keys.(!j) <- k;
        t.vals.(!j) <- ovals.(i)
      end)
    okeys

let add t key v =
  if key < 0 then invalid_arg "Int_table.add: negative key";
  (* Grow at 1/2 live occupancy.  Tombstones are cleaned in place only
     once they amount to 1/8 of the table: a fixed-size cache of
     power-of-two capacity parks the table exactly at the load
     boundary, where remove+add churn would otherwise pay a full
     O(capacity) rehash per insertion to reclaim a single tombstone.
     Between the two bounds total occupancy stays under 5/8, so probe
     chains stay short and always terminate. *)
  let cap = t.mask + 1 in
  if 2 * (t.live + 1) > cap then rehash t (2 * cap)
  else if 2 * (t.live + t.tombs + 1) > cap && 8 * t.tombs >= cap then
    rehash t cap;
  let i = ref (slot_of t key) in
  let first_tomb = ref (-1) in
  let slot = ref (-3) in
  while !slot = -3 do
    let k = Array.unsafe_get t.keys !i in
    if k = key then slot := !i
    else if k = empty_key then
      slot := (if !first_tomb >= 0 then !first_tomb else !i)
    else begin
      if k = tomb_key && !first_tomb < 0 then first_tomb := !i;
      i := (!i + 1) land t.mask
    end
  done;
  let s = !slot in
  if t.keys.(s) <> key then begin
    if t.keys.(s) = tomb_key then t.tombs <- t.tombs - 1;
    t.keys.(s) <- key;
    t.live <- t.live + 1
  end;
  t.vals.(s) <- v

let remove t key =
  let s = find_slot t key in
  if s >= 0 then begin
    t.keys.(s) <- tomb_key;
    t.vals.(s) <- t.dummy;
    t.live <- t.live - 1;
    t.tombs <- t.tombs + 1;
    (* Without this, a removal-heavy phase (mass invalidation, cache
       churn) leaves the table mostly tombstones: every miss probes to
       the next truly-empty slot, and nothing short of the next [add]
       ever cleans up.  Rehashing once tombstones outnumber live
       entries bounds the dead load factor at 1/2 and shrinks the
       arrays back down after a bulk delete; the O(capacity) cost
       amortises against the removals that created the tombstones.
       The new table is sized at 1/4 load so the shrink lands well
       clear of the grow boundary (no grow/shrink hysteresis). *)
    if t.tombs > t.live then rehash t (capacity_for (4 * (t.live + 1)) 16)
  end

let tombstones t = t.tombs

(* Slots inspected to resolve [key] (present or absent) — the table's
   probe cost, exposed so tests can pin the tombstone-cleanup
   behaviour. *)
let probe_length t key =
  let i = ref (slot_of t key) in
  let probes = ref 1 in
  let stop = ref false in
  while not !stop do
    let k = Array.unsafe_get t.keys !i in
    if k = key || k = empty_key then stop := true
    else begin
      incr probes;
      i := (!i + 1) land t.mask
    end
  done;
  !probes

let iter t ~f =
  Array.iteri (fun i k -> if k >= 0 then f k (Array.unsafe_get t.vals i)) t.keys

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.live <- 0;
  t.tombs <- 0
