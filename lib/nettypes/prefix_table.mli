(** Longest-prefix-match table.

    A binary trie keyed by IPv4 prefixes, as used by EID-prefix lookup in
    map-caches, NERD databases and the ALT overlay's aggregation
    hierarchy.  Lookup returns the most specific (longest) matching
    prefix's binding. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Ipv4.prefix -> 'a -> unit
(** Insert or replace the binding of an exact prefix. *)

val remove : 'a t -> Ipv4.prefix -> unit
(** Remove the binding of an exact prefix (no-op if absent). *)

val find_exact : 'a t -> Ipv4.prefix -> 'a option

val lookup : 'a t -> Ipv4.addr -> (Ipv4.prefix * 'a) option
(** Longest-prefix match for an address. *)

val lookup_value : 'a t -> Ipv4.addr -> 'a option

val covering : 'a t -> Ipv4.prefix -> (Ipv4.prefix * 'a) option
(** Most specific binding whose prefix subsumes the given prefix. *)

val length : 'a t -> int
(** Number of bound prefixes. *)

val is_empty : 'a t -> bool

val iter : 'a t -> f:(Ipv4.prefix -> 'a -> unit) -> unit
(** Visit bindings in ascending (network, length) order. *)

val fold : 'a t -> init:'b -> f:(Ipv4.prefix -> 'a -> 'b -> 'b) -> 'b

val fold_covered :
  'a t -> Ipv4.prefix -> init:'b -> f:(Ipv4.prefix -> 'a -> 'b -> 'b) -> 'b
(** Fold over the bindings the given prefix subsumes — the exact
    binding, if any, and every more-specific one under it — in
    ascending (network, length) order.  Visits only the covered
    subtree, so the cost is proportional to the matching bindings, not
    {!length}. *)

val to_list : 'a t -> (Ipv4.prefix * 'a) list
val clear : 'a t -> unit
