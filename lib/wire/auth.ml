let signature_bytes = 72

let default_sig_cpu_cost = 30e-6
