(** Wire-level costs of authenticated map-replies.

    The model charges signatures the way it charges headers: a byte tax
    on the control channel plus a per-packet CPU cost at the verifier.
    Neither the algorithm nor key distribution is modelled — only their
    footprint on the two quantities the experiments measure (control
    bytes and map-resolution latency). *)

val signature_bytes : int
(** Size of the signature option appended to a signed map-reply —
    sized after a DER-encoded ECDSA-P256 signature (up to 72 bytes). *)

val default_sig_cpu_cost : float
(** Seconds of verifier CPU per signed reply (one ECDSA verification on
    commodity hardware, ~30 µs); scenarios can override. *)
