(** Deterministic pseudo-random number generation for simulations.

    The generator is SplitMix64: a small, fast, well-distributed generator
    whose state is a single [int64].  Every stochastic component of the
    simulator takes an explicit [Rng.t] so that experiments are
    bit-reproducible from their seed.  Independent streams are obtained
    with {!split}, which never shares state with its parent. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t] once.  Use one split stream per simulation component so
    that adding draws to one component does not perturb the others. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean.
    Requires [mean > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto (type I) sample: minimum value [scale], tail index [shape].
    Requires [shape > 0] and [scale > 0]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal sample where the underlying normal has mean [mu] and
    standard deviation [sigma]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on an empty
    array. *)

module Zipf : sig
  (** Zipf-distributed ranks over a finite universe, used for destination
      popularity in workloads.  Sampling is O(1) per draw via Walker's
      alias method (one uniform variate per sample); table construction
      is O(n). *)

  type dist

  val create : n:int -> alpha:float -> dist
  (** [create ~n ~alpha] prepares a Zipf distribution over ranks
      [0 .. n-1] with exponent [alpha >= 0].  [alpha = 0] degenerates to
      the uniform distribution. *)

  val sample : dist -> t -> int
  (** Draw a rank in [\[0, n)]. *)

  val support : dist -> int
  (** The universe size [n]. *)

  val probability : dist -> int -> float
  (** [probability d k] is the probability mass of rank [k]. *)
end
