(* Attack-injection layer.  Same discipline as [Faults] and
   [Lifecycle]: strictly opt-in, driven by its own RNG stream, and a
   probability of zero takes no draw — a run with no attack profile
   configured is byte-identical to one where the layer does not exist.

   The module only decides *whether* and *when* an attack fires and
   keeps the attacker-side book; the victims (Mapsys.Pull, the DNS
   system, the scenario's flood driver) own the actual injection so
   that netsim stays free of protocol knowledge. *)

type t = {
  rng : Rng.t;
  spoof_rate : float;
  spoof_head_start : float;
  replay_rate : float;
  dns_poison_rate : float;
  flood_rate : float;
  flood_eids : int;
  flood_from : float;
  flood_until : float;
  mutable forged_replies : int;
  mutable replayed_replies : int;
  mutable poisoned_answers : int;
  mutable flood_packets : int;
}

let check_probability name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Adversary: %s must be in [0, 1]" name)

let create ~rng ?(spoof_rate = 0.0) ?(spoof_head_start = 0.002)
    ?(replay_rate = 0.0) ?(dns_poison_rate = 0.0) ?(flood_rate = 0.0)
    ?(flood_eids = 1024) ?(flood_from = 0.0) ?(flood_until = infinity) () =
  check_probability "spoof_rate" spoof_rate;
  check_probability "replay_rate" replay_rate;
  check_probability "dns_poison_rate" dns_poison_rate;
  if spoof_head_start < 0.0 then
    invalid_arg "Adversary.create: negative spoof_head_start";
  if flood_rate < 0.0 then invalid_arg "Adversary.create: negative flood_rate";
  if flood_eids < 1 then invalid_arg "Adversary.create: flood_eids must be >= 1";
  if flood_from > flood_until then
    invalid_arg "Adversary.create: flood_from > flood_until";
  { rng; spoof_rate; spoof_head_start; replay_rate; dns_poison_rate;
    flood_rate; flood_eids; flood_from; flood_until; forged_replies = 0;
    replayed_replies = 0; poisoned_answers = 0; flood_packets = 0 }

(* Every predicate takes a draw only when its probability is positive,
   so attacks that are configured off never perturb the stream — and an
   all-zero adversary is inert even though it exists. *)
let draw t ~p counter bump =
  p > 0.0
  && Rng.bernoulli t.rng ~p
  &&
  (bump counter;
   true)

let forges_reply t =
  draw t ~p:t.spoof_rate t (fun t -> t.forged_replies <- t.forged_replies + 1)

let replays_reply t =
  draw t ~p:t.replay_rate t (fun t ->
      t.replayed_replies <- t.replayed_replies + 1)

let poisons_answer t =
  draw t ~p:t.dns_poison_rate t (fun t ->
      t.poisoned_answers <- t.poisoned_answers + 1)

let spoof_head_start t = t.spoof_head_start

(* The off-path attacker cannot see the request, so its only handle on
   the nonce echo is a blind guess over the full 32-bit space. *)
let guess_nonce t = Rng.int t.rng 0x100000000

let flood_configured t = t.flood_rate > 0.0

let flood_active t ~now = now >= t.flood_from && now < t.flood_until

let flood_interarrival t =
  if t.flood_rate <= 0.0 then invalid_arg "Adversary.flood_interarrival: flood off";
  Rng.exponential t.rng ~mean:(1.0 /. t.flood_rate)

let flood_eid_index t =
  t.flood_packets <- t.flood_packets + 1;
  Rng.int t.rng t.flood_eids

let flood_eids t = t.flood_eids
let forged_replies t = t.forged_replies
let replayed_replies t = t.replayed_replies
let poisoned_answers t = t.poisoned_answers
let flood_packets t = t.flood_packets
