type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z0 =
  let z1 = Int64.(mul (logxor z0 (shift_right_logical z0 30)) 0xBF58476D1CE4E5B9L) in
  let z2 = Int64.(mul (logxor z1 (shift_right_logical z1 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z2 (shift_right_logical z2 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (int64 t) }

let float t =
  (* 53 significant bits, uniform in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on 63-bit draws to avoid modulo bias: accept
     raw <= limit where limit + 1 is the largest multiple of [bound]
     not exceeding 2^63. *)
  let bound64 = Int64.of_int bound in
  let rem =
    Int64.rem (Int64.add (Int64.rem Int64.max_int bound64) 1L) bound64
  in
  let limit = Int64.sub Int64.max_int rem in
  let rec draw () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    if raw > limit then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t ~p = float t < p

let exponential t ~mean =
  assert (mean > 0.0);
  let u = 1.0 -. float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  let u = 1.0 -. float t in
  scale /. (u ** (1.0 /. shape))

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t in
  let u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

module Zipf = struct
  (* Walker's alias method (Vose's construction): the table costs O(n)
     to build like the old cumulative array, but each draw is O(1)
     instead of an O(log n) bisection — the workload generator draws one
     destination per flow, millions of times in the scale experiments. *)
  type dist = { masses : float array; prob : float array; alias : int array }

  let create ~n ~alpha =
    if n <= 0 then invalid_arg "Rng.Zipf.create: n must be positive";
    if alpha < 0.0 then invalid_arg "Rng.Zipf.create: alpha must be >= 0";
    let masses = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** alpha)) in
    let total = Array.fold_left ( +. ) 0.0 masses in
    let masses = Array.map (fun m -> m /. total) masses in
    let prob = Array.make n 0.0 in
    let alias = Array.init n (fun i -> i) in
    let scaled = Array.map (fun m -> m *. float_of_int n) masses in
    (* Worklists of under- and over-full columns, kept as stacks. *)
    let small = Array.make n 0 and large = Array.make n 0 in
    let ns = ref 0 and nl = ref 0 in
    Array.iteri
      (fun i s ->
        if s < 1.0 then begin
          small.(!ns) <- i;
          incr ns
        end
        else begin
          large.(!nl) <- i;
          incr nl
        end)
      scaled;
    while !ns > 0 && !nl > 0 do
      decr ns;
      let l = small.(!ns) in
      decr nl;
      let g = large.(!nl) in
      prob.(l) <- scaled.(l);
      alias.(l) <- g;
      scaled.(g) <- scaled.(g) +. scaled.(l) -. 1.0;
      if scaled.(g) < 1.0 then begin
        small.(!ns) <- g;
        incr ns
      end
      else begin
        large.(!nl) <- g;
        incr nl
      end
    done;
    (* Leftovers are exactly full up to rounding error. *)
    while !nl > 0 do
      decr nl;
      prob.(large.(!nl)) <- 1.0
    done;
    while !ns > 0 do
      decr ns;
      prob.(small.(!ns)) <- 1.0
    done;
    { masses; prob; alias }

  let support d = Array.length d.masses
  let probability d k = d.masses.(k)

  let sample d t =
    let n = Array.length d.prob in
    (* One uniform draw selects both the column and the coin flip. *)
    let u = float t *. float_of_int n in
    let i = int_of_float u in
    let i = if i >= n then n - 1 else i in
    if u -. float_of_int i < d.prob.(i) then i else d.alias.(i)
end
