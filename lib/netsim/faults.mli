(** Control-plane fault injection: message loss, delay jitter and
    scheduled outage windows.

    A [Faults.t] decides, per control message, whether the message is
    lost.  Losses come from two sources:

    - {e random loss}: a Bernoulli draw against a global loss
      probability (or a per-pair override), deterministic through the
      {!Rng} stream the model was created with;
    - {e scheduled windows}: fault scripts (link flaps, partitions)
      declare intervals of simulated time during which messages touching
      a given scope are dropped deterministically, before any random
      draw — so a window behaves identically across repeated runs and
      never perturbs the random stream.

    The model is intentionally topology-agnostic: endpoints are plain
    integers (the simulator uses domain ids), so it lives in [netsim]
    next to {!Rng} and {!Engine}.

    The same module also defines the {!retry} policy (initial RTO,
    exponential backoff, bounded budget) shared by the map-request
    retransmission logic and the acknowledged PCE pushes. *)

type t

type scope =
  | All  (** every control message *)
  | Domain of int  (** messages from or to the given endpoint *)
  | Pair of int * int  (** messages between the two endpoints, either direction *)

val create : rng:Rng.t -> ?loss:float -> ?jitter:float -> unit -> t
(** [loss] is the global Bernoulli loss probability in [\[0, 1\]]
    (default 0); [jitter] the maximum extra one-way delay in seconds
    added to every surviving message (default 0, uniform in
    [\[0, jitter)]).  When a probability is exactly 0 no random draw is
    made, so a zero-loss model leaves the stream untouched. *)

val loss : t -> float
val set_loss : t -> float -> unit

val set_pair_loss : t -> a:int -> b:int -> float -> unit
(** Override the loss probability for messages between [a] and [b]
    (either direction), e.g. one lossy peering. *)

val add_window : t -> from_:float -> until:float -> scope -> unit
(** Schedule a deterministic outage: messages matching [scope] sent at
    [from_ <= now < until] are dropped.  Requires [from_ <= until]. *)

val flap : t -> at:float -> duration:float -> domain:int -> unit
(** [flap t ~at ~duration ~domain] — the domain's control-plane
    reachability flaps down for [duration] seconds starting at [at]. *)

val partition : t -> from_:float -> until:float -> a:int -> b:int -> unit
(** Cut the control channel between two endpoints for the window. *)

val drops_message : t -> now:float -> src:int -> dst:int -> bool
(** Decide the fate of one control message sent at [now].  Scheduled
    windows are checked first (counted under {!blocked}); otherwise a
    Bernoulli draw against the pair's loss probability decides (counted
    under {!losses}). *)

val extra_delay : t -> float
(** Jitter for one surviving message: uniform in [\[0, jitter)], or
    exactly [0.0] without touching the random stream when jitter is 0. *)

val losses : t -> int
(** Messages lost to random draws so far. *)

val blocked : t -> int
(** Messages dropped by scheduled windows so far. *)

(** {1 Retry policy} *)

type retry = {
  rto : float;  (** initial retransmission timeout, seconds *)
  backoff : float;  (** multiplier applied per retransmission *)
  budget : int;  (** maximum number of retransmissions (0 = none) *)
}

val retry : ?rto:float -> ?backoff:float -> ?budget:int -> unit -> retry
(** Defaults: 0.5 s initial RTO, factor-2 backoff, budget 3.
    Requires [rto > 0], [backoff >= 1] and [budget >= 0]. *)

val retry_delay : retry -> attempt:int -> float
(** Timeout armed after transmission number [attempt] (1-based):
    [rto *. backoff ^ (attempt - 1)]. *)
