(** In-engine self-profiler: where does the *simulator* spend wall
    time?

    The simulated clock says nothing about the cost of running the
    simulation itself; at millions of events per run the question
    "which subsystem burns the cycles" needs an answer before any hot
    path is rewritten.  This module provides phase timers with
    hierarchical self-time accounting and named counters, built on the
    monotonic clock (CLOCK_MONOTONIC via bechamel's stub — wall time
    under NTP steps stays sane).

    The profiler is process-global and **disabled by default**.  Every
    instrumented call site pays exactly one flag load and branch while
    disabled — no closure, no clock read, no allocation — so leaving
    the instrumentation compiled into the hot paths is free
    ([bench/bench_micro.ml] pins this, [test/test_prof.ml] asserts the
    disabled path allocates nothing).

    Accounting model: phases form a stack.  Time always accrues to the
    phase on top — entering a child stops the parent's self-time,
    leaving resumes it — so {e self} times of all phases partition the
    profiled wall time (minus whatever ran with an empty stack, which
    the report exposes as unattributed).  {e total} time is the
    conventional inclusive time; recursive re-entry of a phase is
    counted once (outermost activation only). *)

type phase
(** A registered phase.  Register once at module initialisation
    ([let ph_dns = Prof.phase "dns"]) and use the value on the hot
    path; registration itself allocates. *)

val phase : string -> phase
(** Get-or-create the phase with this name.  At most {!max_phases}
    distinct names; raises [Invalid_argument] beyond that. *)

val max_phases : int
val phase_name : phase -> string

(** {1 Switching} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val start : unit -> unit
(** Reset all accumulators, mark the wall-time origin and enable. *)

val stop : unit -> unit
(** Close any still-open phases at the current time and disable.
    Accumulated results remain readable via {!report}. *)

val pause : unit -> unit
(** Temporarily stop the clocks without touching the phase stack —
    used by the micro-benchmark harness so measured loops never pay
    profiler overhead.  No-op when not running. *)

val resume : unit -> unit
(** Undo {!pause}; the paused interval is charged to nobody. *)

(** {1 Instrumentation} *)

val enter : phase -> unit
val leave : phase -> unit
(** Hot-path pair.  [leave] must match the most recent unmatched
    [enter]; the profiler trusts call sites and attributes to the top
    of the stack.  Both are single-branch no-ops while disabled. *)

val with_phase : phase -> (unit -> 'a) -> 'a
(** [enter]/[leave] around a callback, exception-safe.  Allocates a
    closure at the call site; use off the per-event path. *)

val wrap : phase -> (unit -> unit) -> unit -> unit
(** [wrap ph k] is [k] itself when the profiler is disabled at wrap
    time (zero cost), else a thunk running [k] inside [ph].  Built for
    engine-scheduled callbacks: decide once at schedule time. *)

type counter

val counter : string -> counter
(** Get-or-create a named counter (same namespace budget as phases). *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Count only while enabled (so reports reflect the profiled window). *)

val now_s : unit -> float
(** Monotonic clock reading in seconds (works even while disabled). *)

(** {1 Interval recording}

    Optional timeline capture for the Chrome-trace self-profile:
    every phase exit appends one (phase, start, duration, depth)
    interval, relative to the {!start} origin.  Bounded by [cap];
    overflow is counted, not stored. *)

val set_record_intervals : ?cap:int -> bool -> unit
(** Default cap 200_000 intervals.  Enabling also clears the buffer. *)

type interval = {
  iv_name : string;
  iv_start_s : float;  (** seconds since {!start} *)
  iv_dur_s : float;
  iv_depth : int;  (** stack depth at the interval's open, 0-based *)
}

val intervals : unit -> interval list
(** Recorded intervals in completion order. *)

val intervals_dropped : unit -> int

(** {1 Results} *)

type phase_stat = {
  ps_name : string;
  ps_self_s : float;  (** time on top of the stack *)
  ps_total_s : float;  (** inclusive time, outermost activations *)
  ps_calls : int;
}

type report = {
  r_wall_s : float;  (** {!start} to {!stop} (or to now if running) *)
  r_phases : phase_stat list;  (** phases with at least one call, by name *)
  r_counters : (string * int) list;
  r_unattributed_s : float;  (** wall minus the sum of self times *)
  r_intervals_dropped : int;
}

val report : unit -> report
(** Snapshot of the accumulators; callable while running or after
    {!stop}. *)

val coverage : report -> float
(** Fraction of the profiled wall time attributed to named phases
    ([1 - unattributed/wall]); 0 when no time elapsed. *)

(** {1 Testing} *)

val set_clock_for_testing : (unit -> float) option -> unit
(** Substitute a fake clock (seconds) so accumulation arithmetic can
    be pinned exactly; [None] restores the monotonic clock. *)
