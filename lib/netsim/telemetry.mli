(** Network telemetry plane: who carries the traffic, and where does it
    die?

    The simulator's links and counters know cumulative totals, but
    nothing in the stack can answer windowed questions — how much of the
    last second's inbound traffic entered through provider 2, which EIDs
    are hot right now, which node is shedding packets and why.  This
    module maintains that view: cumulative and sliding-window per-link /
    per-node / per-provider packet+byte counters backed by ring buffers,
    a typed drop-cause enum with per-(node, cause) counters, bounded-
    memory Space-Saving top-k sketches for EIDs and flows, and derived
    traffic-engineering balance metrics (per-provider shares, Jain's
    fairness index, max/min load ratio).

    Like {!Prof}, the module is process-global and **disabled by
    default**: every hook compiled into the dataplane hot path pays one
    flag load and branch while disabled — no allocation, no clock read
    ([bench/bench_micro.ml] pins the cost, [test/test_telemetry.ml]
    asserts the disabled path allocates nothing).  Telemetry observes
    only simulated quantities against the simulated clock and never
    schedules events or draws randomness, so enabling it leaves the
    simulation byte-identical.

    All keys are small non-negative ints: {!Topology.Link.id} values,
    {!Topology.Node.id} values, and provider indexes from
    [Topology.Domain.border.provider]. *)

(** {1 Typed drop causes} *)

type drop_cause =
  | No_route  (** link failures disconnected the endpoints *)
  | No_such_eid  (** destination EID is in no domain *)
  | No_receiver  (** destination host has no receiver installed *)
  | No_such_rloc  (** encap target RLOC is not a border router *)
  | Rloc_unreachable  (** RLOC's access link is down *)
  | Post_resolution_miss  (** resolution completed but installed nothing *)
  | Mapping_resolution_drop  (** mapping system answered negatively *)
  | Resolution_abandoned  (** retry budget exhausted while held *)
  | Resolution_timeout  (** resolution outlived its deadline *)
  | Resolution_queue_overflow  (** per-EID hold queue was full *)
  | Nerd_database_miss  (** EID absent from the pushed NERD database *)
  | No_such_eid_domain  (** resolver found no owning domain *)
  | Pce_no_mapping_forward  (** PCE push lost the race, forward path *)
  | Pce_no_mapping_reverse  (** PCE push lost the race, reverse path *)
  | Cp_message_loss  (** control-plane message eaten by {!Faults} *)
  | Outage_failure  (** query failed against a crashed node *)
  | Spoofed_reply_rejected
      (** forged map-reply failed nonce/signature verification *)
  | Replayed_reply_rejected  (** stale replayed reply failed the nonce echo *)
  | Glean_admission_rejected
      (** gleaned mapping refused by the cache admission policy *)

val drop_label : drop_cause -> string
(** Stable wire/report label, e.g. ["resolution-timeout"].  Labels match
    the strings the scattered drop bookkeeping used before this enum
    existed, so traces and JSONL events are unchanged. *)

val drop_cause_of_label : string -> drop_cause option
val all_drop_causes : drop_cause list

(** {1 Configuration and switching} *)

type config = {
  window_s : float;  (** sliding-window slot length, simulated seconds *)
  slots : int;  (** ring size: the window covers [slots * window_s] *)
  topk : int;  (** Space-Saving sketch capacity *)
}

val default_config : config
(** 60 slots of 1 simulated second, top-32 sketches. *)

val enabled : unit -> bool

val start : ?config:config -> now:float -> unit -> unit
(** Reset all accumulators and sketches, anchor the window origin at
    [now] (simulated time) and enable. *)

val stop : unit -> unit
(** Disable; accumulated results stay readable. *)

val config : unit -> config
val window_s : unit -> float
val slots : unit -> int
val current_slot : unit -> int
val slot_start : int -> float

(** {1 Registration}

    One-off, off the hot path. *)

val register_uplink : link:int -> provider:int -> egress_dir:int -> unit
(** Tag a provider access link so its traffic aggregates into the
    per-provider stores.  [egress_dir] is the {!on_link} direction that
    leaves the customer domain (0 = a→b, 1 = b→a); the other direction
    counts as provider ingress. *)

val set_node_label : int -> string -> unit
val node_label : int -> string option

(** {1 Hot-path hooks}

    All are single-branch no-ops while disabled. *)

val touch : now:float -> unit
(** Advance the window clock to simulated time [now].  Call sites that
    move packets call this once per packet; the rotation itself is a
    compare (lazy ring invalidation does the rest). *)

val on_link : link:int -> dir:int -> bytes:int -> unit
(** One packet of [bytes] crossed link [link] in direction [dir]
    (0 = a→b, 1 = b→a).  Registered uplinks also feed the provider
    stores. *)

val on_node_tx : node:int -> bytes:int -> unit
(** Packet originated at [node] (host transmit). *)

val on_node_rx : node:int -> bytes:int -> unit
(** Packet delivered to [node] (host receive). *)

val on_node_fwd : node:int -> bytes:int -> unit
(** Packet transited [node] (interior hop of a routed path). *)

val on_flow_packet : eid:int -> flow:int -> unit
(** Feed the heavy-hitter sketches: one packet toward destination [eid]
    on flow [flow] (both as raw ints). *)

val on_drop : node:int -> drop_cause -> unit
(** Packet died at [node] for [cause]; pass [node = -1] when no single
    node is attributable (the report shows it as unattributed). *)

val on_select : provider:int -> inbound:bool -> unit
(** The IRC engine assigned a flow to an uplink of [provider]. *)

(** {1 Counter results} *)

type stat = {
  st_pkts : int;  (** cumulative packets since {!start} *)
  st_bytes : int;
  st_win_pkts : int;  (** packets inside the sliding window *)
  st_win_bytes : int;
}

val link_stat : link:int -> dir:int -> stat
val node_stat : node:int -> [ `Tx | `Rx | `Fwd ] -> stat
val provider_stat : provider:int -> [ `In | `Out ] -> stat
(** All return zeros for keys never seen. *)

val providers : unit -> int list
(** Providers with registered uplinks or recorded traffic, ascending. *)

val nodes : unit -> int list
val links : unit -> int list

type slot_sample = {
  sl_slot : int;  (** absolute window index since {!start} *)
  sl_start : float;  (** simulated time the window opened *)
  sl_pkts : int;
  sl_bytes : int;
}

val link_series : link:int -> dir:int -> slot_sample list
val provider_series : provider:int -> [ `In | `Out ] -> slot_sample list
(** Retained windows in ascending slot order (empty slots omitted). *)

val selections : unit -> (int * int * int) list
(** Per provider: (provider, outbound assignments, inbound assignments)
    made by the IRC engine since {!start}. *)

(** {1 Derived TE-balance metrics} *)

type balance = {
  bal_providers : int array;
  bal_in_bytes : int array;
  bal_out_bytes : int array;
  bal_in_share : float array;  (** fraction of total inbound bytes *)
  bal_out_share : float array;
  bal_jain_in : float;  (** Jain fairness of inbound provider loads *)
  bal_jain_out : float;
  bal_ratio_in : float;  (** max/min provider load; [infinity] if min 0 *)
  bal_ratio_out : float;
}

val balance : window:bool -> unit -> balance
(** TE balance across providers, over the sliding window
    ([window:true]) or cumulatively. *)

(** {1 Drop reports} *)

val dropped : unit -> int
val drop_totals : unit -> (drop_cause * int) list
(** Per-cause totals, descending count. *)

val drops_by_node : unit -> (int * (drop_cause * int) list) list
(** Per-node cause breakdowns, ascending node; node [-1] collects drops
    recorded without an attributable node. *)

(** {1 Heavy hitters} *)

type heavy_hitter = {
  hh_key : int;
  hh_count : int;  (** estimated count: true count <= this *)
  hh_error : int;  (** over-estimation bound: true >= count - error *)
}

val top_eids : unit -> heavy_hitter list
val top_flows : unit -> heavy_hitter list
(** Monitored keys, descending estimated count.  Any key whose true
    frequency exceeds [total/topk] is guaranteed present. *)

val flow_packets_observed : unit -> int

(** {1 Sketch internals (exposed for tests)} *)

module Sketch : sig
  type t

  val create : cap:int -> t
  val observe : t -> int -> unit
  val entries : t -> (int * int * int) list
  (** (key, estimated count, error) descending by count. *)

  val total : t -> int
  val reset : t -> unit
end
