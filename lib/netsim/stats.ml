module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity;
      total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total
end

module Samples = struct
  type mode = Exact | Reservoir of int

  type t = {
    mode : mode;
    mutable data : floatarray;
    mutable size : int;  (* observations retained in [data] *)
    mutable seen : int;  (* observations offered via [add] *)
    mutable sum : float;
    mutable sorted : floatarray option; (* cache invalidated by [add] *)
    res_rng : Rng.t;  (* reservoir replacement stream; fixed seed for
                         run-to-run determinism *)
  }

  let create ?(mode = Exact) () =
    let initial =
      match mode with
      | Exact -> 16
      | Reservoir capacity ->
          if capacity <= 0 then
            invalid_arg "Stats.Samples.create: reservoir capacity must be > 0";
          Stdlib.min capacity 16
    in
    { mode; data = Float.Array.make initial 0.0; size = 0; seen = 0; sum = 0.0;
      sorted = None; res_rng = Rng.create 0x5EED }

  let store t i x =
    if i >= Float.Array.length t.data then begin
      let bigger = Float.Array.make (2 * Float.Array.length t.data) 0.0 in
      Float.Array.blit t.data 0 bigger 0 t.size;
      t.data <- bigger
    end;
    Float.Array.set t.data i x

  let add t x =
    t.seen <- t.seen + 1;
    t.sum <- t.sum +. x;
    (match t.mode with
    | Exact ->
        store t t.size x;
        t.size <- t.size + 1
    | Reservoir capacity ->
        if t.size < capacity then begin
          store t t.size x;
          t.size <- t.size + 1
        end
        else begin
          (* Algorithm R: keep each of the [seen] observations with equal
             probability capacity/seen. *)
          let j = Rng.int t.res_rng t.seen in
          if j < capacity then Float.Array.set t.data j x
        end);
    t.sorted <- None

  let count t = t.seen
  let retained t = t.size
  let mean t = if t.seen = 0 then 0.0 else t.sum /. float_of_int t.seen

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Float.Array.sub t.data 0 t.size in
        Float.Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.size = 0 then invalid_arg "Stats.Samples.percentile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Samples.percentile: p out of [0, 100]";
    let a = sorted t in
    let n = Float.Array.length a in
    if n = 1 then Float.Array.get a 0
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      Float.Array.get a lo
      +. (frac *. (Float.Array.get a hi -. Float.Array.get a lo))
    end

  let median t = percentile t 50.0

  let cdf ?(points = 50) t =
    if t.size = 0 then []
    else begin
      let a = sorted t in
      let n = Float.Array.length a in
      let steps = Stdlib.min points n in
      List.init steps (fun i ->
          let idx = (i + 1) * n / steps - 1 in
          (Float.Array.get a idx, float_of_int (idx + 1) /. float_of_int n))
    end

  let to_list t = Float.Array.to_list (Float.Array.sub t.data 0 t.size)
end

module P2 = struct
  (* Jain & Chlamtac's P² algorithm: one quantile tracked with five
     markers, O(1) memory and O(1) per observation. *)
  type t = {
    p : float;  (* target, as a fraction in (0, 1) *)
    q : floatarray;  (* marker heights *)
    n : float array;  (* marker positions (1-based counts, stored as float) *)
    np : float array;  (* desired marker positions *)
    dn : float array;  (* desired position increments *)
    mutable count : int;
  }

  let create ~p =
    if p <= 0.0 || p >= 100.0 then
      invalid_arg "Stats.P2.create: p must be in (0, 100)";
    let p = p /. 100.0 in
    { p; q = Float.Array.make 5 0.0;
      n = [| 0.0; 1.0; 2.0; 3.0; 4.0 |];
      np = [| 0.0; 2.0 *. p; 4.0 *. p; 2.0 +. (2.0 *. p); 4.0 |];
      dn = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
      count = 0 }

  let count t = t.count

  let add t x =
    if t.count < 5 then begin
      Float.Array.set t.q t.count x;
      t.count <- t.count + 1;
      if t.count = 5 then Float.Array.sort Float.compare t.q
    end
    else begin
      let q i = Float.Array.get t.q i in
      let k =
        if x < q 0 then begin
          Float.Array.set t.q 0 x;
          0
        end
        else if x >= q 4 then begin
          Float.Array.set t.q 4 x;
          3
        end
        else begin
          let rec find i = if x < q (i + 1) then i else find (i + 1) in
          find 0
        end
      in
      for i = k + 1 to 4 do
        t.n.(i) <- t.n.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.np.(i) <- t.np.(i) +. t.dn.(i)
      done;
      for i = 1 to 3 do
        let d = t.np.(i) -. t.n.(i) in
        if
          (d >= 1.0 && t.n.(i + 1) -. t.n.(i) > 1.0)
          || (d <= -1.0 && t.n.(i - 1) -. t.n.(i) < -1.0)
        then begin
          let s = if d >= 0.0 then 1.0 else -1.0 in
          let qi = q i and qm = q (i - 1) and qp = q (i + 1) in
          let ni = t.n.(i) and nm = t.n.(i - 1) and np1 = t.n.(i + 1) in
          let parabolic =
            qi
            +. s /. (np1 -. nm)
               *. (((ni -. nm +. s) *. (qp -. qi) /. (np1 -. ni))
                  +. ((np1 -. ni -. s) *. (qi -. qm) /. (ni -. nm)))
          in
          let adjusted =
            if qm < parabolic && parabolic < qp then parabolic
            else if s > 0.0 then qi +. ((qp -. qi) /. (np1 -. ni))
            else qi -. ((qm -. qi) /. (nm -. ni))
          in
          Float.Array.set t.q i adjusted;
          t.n.(i) <- ni +. s
        end
      done;
      t.count <- t.count + 1
    end

  let quantile t =
    if t.count = 0 then invalid_arg "Stats.P2.quantile: empty";
    if t.count >= 5 then Float.Array.get t.q 2
    else begin
      (* Fewer observations than markers: exact interpolated quantile. *)
      let a = Float.Array.sub t.q 0 t.count in
      Float.Array.sort Float.compare a;
      let rank = t.p *. float_of_int (t.count - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (t.count - 1) in
      let frac = rank -. float_of_int lo in
      Float.Array.get a lo
      +. (frac *. (Float.Array.get a hi -. Float.Array.get a lo))
    end
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    bins : int array;
    mutable count : int;
    mutable nan : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins must be > 0";
    if not (hi > lo) then invalid_arg "Stats.Histogram.create: hi must be > lo";
    { lo; hi; width = (hi -. lo) /. float_of_int bins; bins = Array.make bins 0;
      count = 0; nan = 0 }

  let add t x =
    if Float.is_nan x then t.nan <- t.nan + 1
    else begin
      let raw = int_of_float ((x -. t.lo) /. t.width) in
      let idx = Stdlib.max 0 (Stdlib.min (Array.length t.bins - 1) raw) in
      t.bins.(idx) <- t.bins.(idx) + 1;
      t.count <- t.count + 1
    end

  let count t = t.count
  let nan_count t = t.nan
  let bin_count t = Array.length t.bins

  let bin t i =
    let lower = t.lo +. (float_of_int i *. t.width) in
    (lower, lower +. t.width, t.bins.(i))

  let fraction_below t value =
    if t.count = 0 then 0.0
    else begin
      let acc = ref 0 in
      for i = 0 to Array.length t.bins - 1 do
        let _, upper, n = bin t i in
        if upper <= value then acc := !acc + n
      done;
      float_of_int !acc /. float_of_int t.count
    end
end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sum_sq = 0.0 then 1.0
    else sum *. sum /. (float_of_int n *. sum_sq)
  end
