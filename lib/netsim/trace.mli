(** Timeline recording for simulation walkthroughs.

    A trace is an append-only log of [(time, actor, event)] entries.  The
    F1 experiment uses it to print the step-by-step control-plane
    walkthrough of the paper's Figure 1; tests use it to assert event
    ordering.

    Storage is a structure-of-arrays ring buffer (timestamps in an
    unboxed [float array]): recording writes three array cells and
    allocates no per-entry queue cell, and a [?capacity] bound
    overwrites the oldest slot in place. *)

type t

type entry = { time : float; actor : string; event : string }

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained entries: once exceeded, recording a
    new entry discards the oldest one (a ring buffer), so production-
    scale runs cannot grow the log without bound.  [length] keeps
    counting every recorded entry; {!entries} returns the retained
    window.  Raises [Invalid_argument] when [capacity <= 0]. *)

val enabled : t -> bool
(** Recording can be switched off so that hot benchmark loops skip the
    formatting cost of building entries. *)

val set_enabled : t -> bool -> unit

val record : t -> time:float -> actor:string -> string -> unit
(** Append an entry (no-op when disabled). *)

val recordf :
  t -> time:float -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!record} with printf formatting of the event text.  When the
    trace is disabled the format arguments are consumed without any
    rendering work. *)

val entries : t -> entry list
(** Retained entries in chronological (= insertion) order.  With a
    [?capacity] bound this is the most recent window only. *)

val length : t -> int
(** Total entries ever recorded, including any that a capacity bound
    has since discarded. *)

val retained : t -> int
(** Entries currently held (= [length] unless a capacity bound has
    discarded old ones). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render as an aligned [t=...s  actor  event] listing. *)

val find : t -> f:(entry -> bool) -> entry option
(** First matching entry, if any. *)

val iter : t -> f:(float -> string -> string -> unit) -> unit
(** [iter t ~f] applies [f time actor event] to each retained entry in
    order, without materialising entry records. *)

val merge : t list -> t
(** Deterministic merge of per-shard traces: the retained entries of
    all inputs ordered by [(time, shard, per-shard order)], where
    [shard] is the trace's position in the list.  Because each shard's
    trace is deterministic in isolation and the key ignores wall-clock
    arrival, merging the traces of a [Engine.Shards] run yields
    byte-identical output whether the shards ran in parallel or
    sequentially. *)
