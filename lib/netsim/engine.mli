(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of timestamped
    callbacks.  Events scheduled for the same instant fire in FIFO order
    (insertion order), which keeps simulations deterministic.  All
    simulated network latencies, timers and timeouts are expressed as
    events on one engine instance.

    Internally the queue is an implicit 4-ary min-heap on [(time, seq)]
    stored in parallel flat arrays (timestamps in an unboxed
    [float array]), with a recycled slot pool carrying cancellation
    state — scheduling allocates no per-event heap records and handles
    are immediate integers.  See doc/performance.md for the design. *)

type t
(** One simulation run: clock plus pending-event queue. *)

type handle
(** Identifies a scheduled event so it can be cancelled (e.g. a
    retransmission timer disarmed by an ACK).  Handles are immediate
    integers tagged with the owning engine and a slot generation:
    using one on a different engine raises, and a handle whose event
    already fired is simply stale. *)

val create : ?start:float -> unit -> t
(** Fresh engine whose clock reads [start] (default [0.0]) seconds. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay] must be
    non-negative; raises [Invalid_argument] otherwise. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time], which must not
    be in the simulated past. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Cancelling an already-fired or
    already-cancelled event is a no-op.
    @raise Invalid_argument if the handle belongs to a different
    engine instance. *)

val pending : t -> int
(** Number of live (not cancelled, not yet fired) events. *)

val pending_hwm : t -> int
(** High-water mark of {!pending} since [create]: the deepest the event
    queue has ever been.  Sizes the heap pressure of a scenario. *)

val compactions : t -> int
(** Number of times the queue was compacted in place to purge cancelled
    events (beyond the lazy reap at the queue head). *)

val run : ?until:float -> t -> unit
(** Execute events in timestamp order.  With [?until], stop once the next
    event would fire strictly after [until] and advance the clock to
    [until]; otherwise run until the queue drains. *)

val step : t -> bool
(** Fire exactly the next event.  Returns [false] when the queue is
    empty. *)

val events_processed : t -> int
(** Total callbacks fired since [create] — a cheap progress/efficiency
    metric for benches. *)

val total_events_processed : unit -> int
(** Process-wide total of callbacks fired across every engine instance
    ever created.  The bench runner reads the delta around an experiment
    to report events/sec even when the experiment builds one engine per
    cell.  Backed by an [Atomic.t], so reads are safe under sharded
    dispatch. *)

(** Opt-in parallel dispatch of independent event streams.

    A pool holds [n] engines, one per shard.  Shards must not share
    mutable simulation state; under that contract [run ~parallel:true]
    (the default) dispatches each shard on its own OCaml 5 [Domain]
    and yields per-shard results identical to running the shards
    sequentially.  Deterministic cross-shard ordering of any merged
    output comes from sorting by simulated [(time, shard)] — see
    [Trace.merge]. *)
module Shards : sig
  type engine := t

  type pool

  val create : ?start:float -> int -> pool
  (** [create n] makes a pool of [n] independent engines.
      @raise Invalid_argument if [n < 1]. *)

  val count : pool -> int

  val get : pool -> int -> engine
  (** [get p i] is shard [i]'s engine, for wiring up its event stream. *)

  val run : ?until:float -> ?parallel:bool -> pool -> unit
  (** Run every shard to completion (or to [until]).  With
      [~parallel:false], shards run sequentially on the calling
      domain — byte-identical per-shard results either way.  The
      self-profiler is paused around the parallel section (its state
      is process-global and not domain-safe). *)

  val events_processed : pool -> int
  (** Sum of {!events_processed} over the shards. *)

  val pending : pool -> int
  (** Sum of {!pending} over the shards. *)
end
