(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of timestamped
    callbacks.  Events scheduled for the same instant fire in FIFO order
    (insertion order), which keeps simulations deterministic.  All
    simulated network latencies, timers and timeouts are expressed as
    events on one engine instance. *)

type t
(** One simulation run: clock plus pending-event queue. *)

type handle
(** Identifies a scheduled event so it can be cancelled (e.g. a
    retransmission timer disarmed by an ACK). *)

val create : ?start:float -> unit -> t
(** Fresh engine whose clock reads [start] (default [0.0]) seconds. *)

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay] must be
    non-negative; raises [Invalid_argument] otherwise. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time], which must not
    be in the simulated past. *)

val cancel : t -> handle -> unit
(** Cancel a pending event.  Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of live (not cancelled, not yet fired) events. *)

val pending_hwm : t -> int
(** High-water mark of {!pending} since [create]: the deepest the event
    queue has ever been.  Sizes the heap pressure of a scenario. *)

val run : ?until:float -> t -> unit
(** Execute events in timestamp order.  With [?until], stop once the next
    event would fire strictly after [until] and advance the clock to
    [until]; otherwise run until the queue drains. *)

val step : t -> bool
(** Fire exactly the next event.  Returns [false] when the queue is
    empty. *)

val events_processed : t -> int
(** Total callbacks fired since [create] — a cheap progress/efficiency
    metric for benches. *)

val total_events_processed : unit -> int
(** Process-wide total of callbacks fired across every engine instance
    ever created.  The bench runner reads the delta around an experiment
    to report events/sec even when the experiment builds one engine per
    cell. *)
