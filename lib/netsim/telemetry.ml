(* Traffic telemetry internals.  Same shape as [Prof]: process-global
   state behind a single [on] flag, so every hot-path hook compiled into
   the dataplane costs exactly one flag load and branch while disabled —
   no closure, no allocation, no clock read.  The simulator is
   single-domain per process and the bench runner forks one process per
   experiment, so global state is the cheap and correct choice.

   Unlike the profiler this module counts *simulated* quantities
   (packets, bytes, drops) against the *simulated* clock, so an enabled
   telemetry plane is still deterministic: it observes the simulation
   and never schedules events or draws randomness. *)

(* ------------------------------------------------------------------ *)
(* Typed drop causes                                                   *)
(* ------------------------------------------------------------------ *)

type drop_cause =
  | No_route
  | No_such_eid
  | No_receiver
  | No_such_rloc
  | Rloc_unreachable
  | Post_resolution_miss
  | Mapping_resolution_drop
  | Resolution_abandoned
  | Resolution_timeout
  | Resolution_queue_overflow
  | Nerd_database_miss
  | No_such_eid_domain
  | Pce_no_mapping_forward
  | Pce_no_mapping_reverse
  | Cp_message_loss
  | Outage_failure
  | Spoofed_reply_rejected
  | Replayed_reply_rejected
  | Glean_admission_rejected

(* The labels are the exact strings the drop bookkeeping used before the
   enum existed: tables, traces and JSONL events must not change when a
   call site switches to the typed cause. *)
let drop_label = function
  | No_route -> "no-route"
  | No_such_eid -> "no-such-eid"
  | No_receiver -> "no-receiver"
  | No_such_rloc -> "no-such-rloc"
  | Rloc_unreachable -> "rloc-unreachable"
  | Post_resolution_miss -> "post-resolution-miss"
  | Mapping_resolution_drop -> "mapping-resolution-drop"
  | Resolution_abandoned -> "resolution-abandoned"
  | Resolution_timeout -> "resolution-timeout"
  | Resolution_queue_overflow -> "resolution-queue-overflow"
  | Nerd_database_miss -> "nerd-database-miss"
  | No_such_eid_domain -> "no-such-eid-domain"
  | Pce_no_mapping_forward -> "pce-no-mapping-forward"
  | Pce_no_mapping_reverse -> "pce-no-mapping-reverse"
  | Cp_message_loss -> "cp-message-loss"
  | Outage_failure -> "outage-failure"
  | Spoofed_reply_rejected -> "spoofed-reply-rejected"
  | Replayed_reply_rejected -> "replayed-reply-rejected"
  | Glean_admission_rejected -> "glean-admission-rejected"

let all_drop_causes =
  [ No_route; No_such_eid; No_receiver; No_such_rloc; Rloc_unreachable;
    Post_resolution_miss; Mapping_resolution_drop; Resolution_abandoned;
    Resolution_timeout; Resolution_queue_overflow; Nerd_database_miss;
    No_such_eid_domain; Pce_no_mapping_forward; Pce_no_mapping_reverse;
    Cp_message_loss; Outage_failure; Spoofed_reply_rejected;
    Replayed_reply_rejected; Glean_admission_rejected ]

let n_causes = List.length all_drop_causes

let cause_index = function
  | No_route -> 0
  | No_such_eid -> 1
  | No_receiver -> 2
  | No_such_rloc -> 3
  | Rloc_unreachable -> 4
  | Post_resolution_miss -> 5
  | Mapping_resolution_drop -> 6
  | Resolution_abandoned -> 7
  | Resolution_timeout -> 8
  | Resolution_queue_overflow -> 9
  | Nerd_database_miss -> 10
  | No_such_eid_domain -> 11
  | Pce_no_mapping_forward -> 12
  | Pce_no_mapping_reverse -> 13
  | Cp_message_loss -> 14
  | Outage_failure -> 15
  (* Only ever append: persisted reports index by these values. *)
  | Spoofed_reply_rejected -> 16
  | Replayed_reply_rejected -> 17
  | Glean_admission_rejected -> 18

let cause_of_index = Array.of_list all_drop_causes

let drop_cause_of_label label =
  List.find_opt (fun c -> String.equal (drop_label c) label) all_drop_causes

(* ------------------------------------------------------------------ *)
(* Configuration and switching                                         *)
(* ------------------------------------------------------------------ *)

type config = { window_s : float; slots : int; topk : int }

let default_config = { window_s = 1.0; slots = 60; topk = 32 }

let on = ref false
let enabled () = !on

let cfg = ref default_config
let config () = !cfg
let origin = ref 0.0
let cur_slot = ref 0

let window_s () = !cfg.window_s
let slots () = !cfg.slots
let current_slot () = !cur_slot
let slot_start i = !origin +. (float_of_int i *. !cfg.window_s)

(* ------------------------------------------------------------------ *)
(* Windowed series                                                     *)
(* ------------------------------------------------------------------ *)

(* One series = cumulative totals plus a ring of the last [slots]
   windows.  The ring uses lazy invalidation: each cell remembers which
   absolute slot it holds, so a write is O(1) (overwrite a stale cell)
   and rotation never walks every registered series. *)
type series = {
  mutable cum_pkts : int;
  mutable cum_bytes : int;
  slot_pkts : int array;
  slot_bytes : int array;
  slot_id : int array; (* absolute slot each cell holds; -1 = empty *)
}

let make_series () =
  let n = !cfg.slots in
  { cum_pkts = 0; cum_bytes = 0; slot_pkts = Array.make n 0;
    slot_bytes = Array.make n 0; slot_id = Array.make n (-1) }

let series_add s ~pkts ~bytes =
  s.cum_pkts <- s.cum_pkts + pkts;
  s.cum_bytes <- s.cum_bytes + bytes;
  let n = Array.length s.slot_id in
  let i = !cur_slot mod n in
  if s.slot_id.(i) <> !cur_slot then begin
    s.slot_id.(i) <- !cur_slot;
    s.slot_pkts.(i) <- 0;
    s.slot_bytes.(i) <- 0
  end;
  s.slot_pkts.(i) <- s.slot_pkts.(i) + pkts;
  s.slot_bytes.(i) <- s.slot_bytes.(i) + bytes

(* Sum of the cells still inside the sliding window
   (cur_slot - slots, cur_slot]. *)
let series_window s =
  let n = Array.length s.slot_id in
  let lo = !cur_slot - n in
  let pkts = ref 0 and bytes = ref 0 in
  for i = 0 to n - 1 do
    if s.slot_id.(i) > lo then begin
      pkts := !pkts + s.slot_pkts.(i);
      bytes := !bytes + s.slot_bytes.(i)
    end
  done;
  (!pkts, !bytes)

type slot_sample = {
  sl_slot : int;
  sl_start : float;
  sl_pkts : int;
  sl_bytes : int;
}

let series_samples s =
  let n = Array.length s.slot_id in
  let lo = !cur_slot - n in
  let acc = ref [] in
  for slot = !cur_slot downto max 0 (lo + 1) do
    let i = slot mod n in
    if s.slot_id.(i) = slot then
      acc :=
        { sl_slot = slot; sl_start = slot_start slot;
          sl_pkts = s.slot_pkts.(i); sl_bytes = s.slot_bytes.(i) }
        :: !acc
  done;
  !acc

(* Growable stores of series, indexed by small int keys (link id, node
   id, provider id).  Growth and series creation only happen while
   telemetry is enabled, off the disabled path. *)
type store = { mutable cells : series option array }

let make_store () = { cells = [||] }

let store_get st key =
  if key < 0 then invalid_arg "Telemetry: negative key";
  let len = Array.length st.cells in
  if key >= len then begin
    let cells = Array.make (max 16 (max (key + 1) (2 * len))) None in
    Array.blit st.cells 0 cells 0 len;
    st.cells <- cells
  end;
  match st.cells.(key) with
  | Some s -> s
  | None ->
      let s = make_series () in
      st.cells.(key) <- Some s;
      s

let store_find st key =
  if key >= 0 && key < Array.length st.cells then st.cells.(key) else None

let store_keys st =
  let acc = ref [] in
  for i = Array.length st.cells - 1 downto 0 do
    if st.cells.(i) <> None then acc := i :: !acc
  done;
  !acc

(* Key classes.  Link stores are indexed by [2 * link_id + dir] so the
   two directions of one link stay separate. *)
let link_store = make_store ()
let node_tx_store = make_store ()
let node_rx_store = make_store ()
let node_fwd_store = make_store ()
let prov_in_store = make_store ()
let prov_out_store = make_store ()

(* Uplink registration: link id -> provider id and which direction
   leaves the customer domain (egress). *)
let uplink_provider : int array ref = ref [||]
let uplink_egress_dir : int array ref = ref [||]

let ensure_int_array arr len default =
  let n = Array.length !arr in
  if len > n then begin
    let a = Array.make (max 16 (max len (2 * n))) default in
    Array.blit !arr 0 a 0 n;
    arr := a
  end

let register_uplink ~link ~provider ~egress_dir =
  if link < 0 || provider < 0 then
    invalid_arg "Telemetry.register_uplink: negative id";
  if egress_dir <> 0 && egress_dir <> 1 then
    invalid_arg "Telemetry.register_uplink: dir must be 0 or 1";
  ensure_int_array uplink_provider (link + 1) (-1);
  ensure_int_array uplink_egress_dir (link + 1) 0;
  !uplink_provider.(link) <- provider;
  !uplink_egress_dir.(link) <- egress_dir

let provider_of_link link =
  if link >= 0 && link < Array.length !uplink_provider then
    let p = !uplink_provider.(link) in
    if p >= 0 then Some p else None
  else None

(* Node labels, for reports only. *)
let node_labels : (int, string) Hashtbl.t = Hashtbl.create 64
let set_node_label node label = Hashtbl.replace node_labels node label
let node_label node = Hashtbl.find_opt node_labels node

(* ------------------------------------------------------------------ *)
(* Drop accounting                                                     *)
(* ------------------------------------------------------------------ *)

(* Flat per-(node, cause) counters: row [node + 1] (row 0 holds drops
   with no attributable node), column [cause_index]. *)
let drop_rows : int array ref = ref [||] (* (node+1) * n_causes + cause *)
let drop_row_count = ref 0
let drops_total = ref 0

let drop_cell node cause =
  let row = node + 1 in
  if row >= !drop_row_count then drop_row_count := row + 1;
  ensure_int_array drop_rows (!drop_row_count * n_causes) 0;
  (row * n_causes) + cause_index cause

(* ------------------------------------------------------------------ *)
(* Space-Saving heavy-hitter sketches                                  *)
(* ------------------------------------------------------------------ *)

module Sketch = struct
  (* Metwally et al.'s Space-Saving: at most [cap] monitored keys; a
     new key beyond capacity evicts the minimum-count key and inherits
     its count as over-estimation error.  Any key with true frequency
     above [total / cap] is guaranteed monitored, and every reported
     count over-estimates truth by at most its recorded error
     (<= total / cap). *)
  type t = {
    cap : int;
    index : (int, int) Hashtbl.t; (* key -> slot *)
    keys : int array;
    counts : int array;
    errors : int array;
    mutable used : int;
    mutable total : int;
  }

  let create ~cap =
    if cap <= 0 then invalid_arg "Telemetry.Sketch.create: cap must be > 0";
    { cap; index = Hashtbl.create (2 * cap); keys = Array.make cap 0;
      counts = Array.make cap 0; errors = Array.make cap 0; used = 0;
      total = 0 }

  let min_slot t =
    let best = ref 0 in
    for i = 1 to t.used - 1 do
      if t.counts.(i) < t.counts.(!best) then best := i
    done;
    !best

  let observe t key =
    t.total <- t.total + 1;
    match Hashtbl.find_opt t.index key with
    | Some i -> t.counts.(i) <- t.counts.(i) + 1
    | None ->
        if t.used < t.cap then begin
          let i = t.used in
          t.used <- i + 1;
          t.keys.(i) <- key;
          t.counts.(i) <- 1;
          t.errors.(i) <- 0;
          Hashtbl.replace t.index key i
        end
        else begin
          let i = min_slot t in
          Hashtbl.remove t.index t.keys.(i);
          Hashtbl.replace t.index key i;
          t.errors.(i) <- t.counts.(i);
          t.counts.(i) <- t.counts.(i) + 1;
          t.keys.(i) <- key
        end

  let total t = t.total

  let entries t =
    let l = ref [] in
    for i = t.used - 1 downto 0 do
      l := (t.keys.(i), t.counts.(i), t.errors.(i)) :: !l
    done;
    List.sort
      (fun (ka, ca, _) (kb, cb, _) ->
        if ca <> cb then Int.compare cb ca else Int.compare ka kb)
      !l

  let reset t =
    Hashtbl.reset t.index;
    t.used <- 0;
    t.total <- 0
end

let eid_sketch = ref (Sketch.create ~cap:default_config.topk)
let flow_sketch = ref (Sketch.create ~cap:default_config.topk)

(* IRC selection decisions, cumulative per provider and direction. *)
let sel_out : int array ref = ref [||]
let sel_in : int array ref = ref [||]
let sel_max = ref 0

(* ------------------------------------------------------------------ *)
(* Hot-path hooks                                                      *)
(* ------------------------------------------------------------------ *)

let touch ~now =
  if !on then begin
    let s = int_of_float ((now -. !origin) /. !cfg.window_s) in
    if s > !cur_slot then cur_slot := s
  end

let on_link ~link ~dir ~bytes =
  if !on then begin
    series_add (store_get link_store ((2 * link) + dir)) ~pkts:1 ~bytes;
    match provider_of_link link with
    | Some p ->
        let st =
          if dir = !uplink_egress_dir.(link) then prov_out_store
          else prov_in_store
        in
        series_add (store_get st p) ~pkts:1 ~bytes
    | None -> ()
  end

let on_node_tx ~node ~bytes =
  if !on then series_add (store_get node_tx_store node) ~pkts:1 ~bytes

let on_node_rx ~node ~bytes =
  if !on then series_add (store_get node_rx_store node) ~pkts:1 ~bytes

let on_node_fwd ~node ~bytes =
  if !on then series_add (store_get node_fwd_store node) ~pkts:1 ~bytes

let on_flow_packet ~eid ~flow =
  if !on then begin
    Sketch.observe !eid_sketch eid;
    Sketch.observe !flow_sketch flow
  end

let on_drop ~node cause =
  if !on then begin
    Stdlib.incr drops_total;
    let cell = drop_cell node cause in
    !drop_rows.(cell) <- !drop_rows.(cell) + 1
  end

let on_select ~provider ~inbound =
  if !on then begin
    if provider >= !sel_max then sel_max := provider + 1;
    ensure_int_array sel_out !sel_max 0;
    ensure_int_array sel_in !sel_max 0;
    let a = if inbound then sel_in else sel_out in
    !a.(provider) <- !a.(provider) + 1
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let reset_stores () =
  link_store.cells <- [||];
  node_tx_store.cells <- [||];
  node_rx_store.cells <- [||];
  node_fwd_store.cells <- [||];
  prov_in_store.cells <- [||];
  prov_out_store.cells <- [||];
  uplink_provider := [||];
  uplink_egress_dir := [||];
  Hashtbl.reset node_labels;
  drop_rows := [||];
  drop_row_count := 0;
  drops_total := 0;
  sel_out := [||];
  sel_in := [||];
  sel_max := 0

let start ?(config = default_config) ~now () =
  if config.window_s <= 0.0 then
    invalid_arg "Telemetry.start: window must be positive";
  if config.slots <= 0 then invalid_arg "Telemetry.start: slots must be > 0";
  cfg := config;
  origin := now;
  cur_slot := 0;
  reset_stores ();
  eid_sketch := Sketch.create ~cap:config.topk;
  flow_sketch := Sketch.create ~cap:config.topk;
  on := true

let stop () = on := false

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type stat = {
  st_pkts : int;
  st_bytes : int;
  st_win_pkts : int;
  st_win_bytes : int;
}

let zero_stat = { st_pkts = 0; st_bytes = 0; st_win_pkts = 0; st_win_bytes = 0 }

let stat_of_series = function
  | None -> zero_stat
  | Some s ->
      let wp, wb = series_window s in
      { st_pkts = s.cum_pkts; st_bytes = s.cum_bytes; st_win_pkts = wp;
        st_win_bytes = wb }

let link_stat ~link ~dir =
  stat_of_series (store_find link_store ((2 * link) + dir))

let node_stat ~node kind =
  let st =
    match kind with
    | `Tx -> node_tx_store
    | `Rx -> node_rx_store
    | `Fwd -> node_fwd_store
  in
  stat_of_series (store_find st node)

let provider_stat ~provider dir =
  let st = match dir with `In -> prov_in_store | `Out -> prov_out_store in
  stat_of_series (store_find st provider)

let providers () =
  List.sort_uniq Int.compare
    (store_keys prov_in_store @ store_keys prov_out_store
    @ List.filter_map
        (fun link -> provider_of_link link)
        (List.init (Array.length !uplink_provider) Fun.id))

let nodes () =
  List.sort_uniq Int.compare
    (store_keys node_tx_store @ store_keys node_rx_store
   @ store_keys node_fwd_store)

let links () =
  List.sort_uniq Int.compare
    (List.map (fun k -> k / 2) (store_keys link_store))

let series_of st key =
  match store_find st key with None -> [] | Some s -> series_samples s

let link_series ~link ~dir = series_of link_store ((2 * link) + dir)

let provider_series ~provider dir =
  let st = match dir with `In -> prov_in_store | `Out -> prov_out_store in
  series_of st provider

let selections () =
  List.init !sel_max (fun p ->
      let get a = if p < Array.length !a then !a.(p) else 0 in
      (p, get sel_out, get sel_in))

(* ------------------------------------------------------------------ *)
(* Derived TE-balance metrics                                          *)
(* ------------------------------------------------------------------ *)

type balance = {
  bal_providers : int array;
  bal_in_bytes : int array;
  bal_out_bytes : int array;
  bal_in_share : float array;
  bal_out_share : float array;
  bal_jain_in : float;
  bal_jain_out : float;
  bal_ratio_in : float; (* max/min provider load; infinity when min = 0 *)
  bal_ratio_out : float;
}

let shares bytes =
  let total = Array.fold_left ( + ) 0 bytes in
  if total = 0 then Array.map (fun _ -> 0.0) bytes
  else Array.map (fun b -> float_of_int b /. float_of_int total) bytes

let max_min_ratio bytes =
  if Array.length bytes = 0 then 1.0
  else begin
    let mx = Array.fold_left max 0 bytes in
    let mn = Array.fold_left min max_int bytes in
    if mx = 0 then 1.0
    else if mn = 0 then infinity
    else float_of_int mx /. float_of_int mn
  end

let balance ~window () =
  let ps = Array.of_list (providers ()) in
  let grab dir p =
    let s = provider_stat ~provider:p dir in
    if window then s.st_win_bytes else s.st_bytes
  in
  let in_bytes = Array.map (grab `In) ps in
  let out_bytes = Array.map (grab `Out) ps in
  { bal_providers = ps;
    bal_in_bytes = in_bytes;
    bal_out_bytes = out_bytes;
    bal_in_share = shares in_bytes;
    bal_out_share = shares out_bytes;
    bal_jain_in = Stats.jain_index (Array.map float_of_int in_bytes);
    bal_jain_out = Stats.jain_index (Array.map float_of_int out_bytes);
    bal_ratio_in = max_min_ratio in_bytes;
    bal_ratio_out = max_min_ratio out_bytes }

(* ------------------------------------------------------------------ *)
(* Drop reports                                                        *)
(* ------------------------------------------------------------------ *)

let dropped () = !drops_total

let drop_totals () =
  let totals = Array.make n_causes 0 in
  for row = 0 to !drop_row_count - 1 do
    for c = 0 to n_causes - 1 do
      totals.(c) <- totals.(c) + !drop_rows.((row * n_causes) + c)
    done
  done;
  let l = ref [] in
  for c = n_causes - 1 downto 0 do
    if totals.(c) > 0 then l := (cause_of_index.(c), totals.(c)) :: !l
  done;
  List.sort
    (fun (ca, na) (cb, nb) ->
      if na <> nb then Int.compare nb na
      else Int.compare (cause_index ca) (cause_index cb))
    !l

let drops_by_node () =
  let out = ref [] in
  for row = !drop_row_count - 1 downto 0 do
    let causes = ref [] in
    for c = n_causes - 1 downto 0 do
      let n = !drop_rows.((row * n_causes) + c) in
      if n > 0 then causes := (cause_of_index.(c), n) :: !causes
    done;
    if !causes <> [] then out := (row - 1, !causes) :: !out
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Heavy-hitter reports                                                *)
(* ------------------------------------------------------------------ *)

type heavy_hitter = { hh_key : int; hh_count : int; hh_error : int }

let hitters sk =
  List.map
    (fun (key, count, error) ->
      { hh_key = key; hh_count = count; hh_error = error })
    (Sketch.entries !sk)

let top_eids () = hitters eid_sketch
let top_flows () = hitters flow_sketch
let flow_packets_observed () = Sketch.total !flow_sketch
