type scope = All | Domain of int | Pair of int * int

type window = { from_ : float; until : float; scope : scope }

type t = {
  rng : Rng.t;
  mutable loss : float;
  jitter : float;
  pair_loss : (int * int, float) Hashtbl.t; (* normalised (min, max) key *)
  mutable windows : window list;
  mutable losses : int;
  mutable blocked : int;
}

let check_probability name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Faults: %s must be in [0, 1]" name)

let create ~rng ?(loss = 0.0) ?(jitter = 0.0) () =
  check_probability "loss" loss;
  if jitter < 0.0 then invalid_arg "Faults.create: negative jitter";
  { rng; loss; jitter; pair_loss = Hashtbl.create 8; windows = [];
    losses = 0; blocked = 0 }

let loss t = t.loss

let set_loss t p =
  check_probability "loss" p;
  t.loss <- p

let pair_key a b = (min a b, max a b)

let set_pair_loss t ~a ~b p =
  check_probability "pair loss" p;
  Hashtbl.replace t.pair_loss (pair_key a b) p

let add_window t ~from_ ~until scope =
  if from_ > until then invalid_arg "Faults.add_window: from_ > until";
  t.windows <- { from_; until; scope } :: t.windows

let flap t ~at ~duration ~domain =
  if duration < 0.0 then invalid_arg "Faults.flap: negative duration";
  add_window t ~from_:at ~until:(at +. duration) (Domain domain)

let partition t ~from_ ~until ~a ~b = add_window t ~from_ ~until (Pair (a, b))

let window_matches w ~now ~src ~dst =
  now >= w.from_ && now < w.until
  &&
  match w.scope with
  | All -> true
  | Domain d -> src = d || dst = d
  | Pair (a, b) -> (src = a && dst = b) || (src = b && dst = a)

let pair_probability t ~src ~dst =
  match Hashtbl.find_opt t.pair_loss (pair_key src dst) with
  | Some p -> p
  | None -> t.loss

let drops_message t ~now ~src ~dst =
  if List.exists (window_matches ~now ~src ~dst) t.windows then begin
    t.blocked <- t.blocked + 1;
    true
  end
  else
    let p = pair_probability t ~src ~dst in
    (* p = 0 takes no draw, so a zero-loss model never perturbs the
       random stream (bit-reproducibility of loss-free runs). *)
    p > 0.0
    && Rng.bernoulli t.rng ~p
    &&
    (t.losses <- t.losses + 1;
     if Telemetry.enabled () then
       Telemetry.on_drop ~node:(-1) Telemetry.Cp_message_loss;
     true)

let extra_delay t =
  if t.jitter <= 0.0 then 0.0 else Rng.uniform t.rng ~lo:0.0 ~hi:t.jitter

let losses t = t.losses
let blocked t = t.blocked

type retry = { rto : float; backoff : float; budget : int }

let retry ?(rto = 0.5) ?(backoff = 2.0) ?(budget = 3) () =
  if rto <= 0.0 then invalid_arg "Faults.retry: rto must be positive";
  if backoff < 1.0 then invalid_arg "Faults.retry: backoff must be >= 1";
  if budget < 0 then invalid_arg "Faults.retry: negative budget";
  { rto; backoff; budget }

let retry_delay r ~attempt =
  if attempt < 1 then invalid_arg "Faults.retry_delay: attempt is 1-based";
  r.rto *. (r.backoff ** float_of_int (attempt - 1))
