(** Control-plane attack injection.

    Models the off-path attacker of Almasan et al. ("Securing the
    Control-plane Channel and Cache of Pull-based ID/LOC Protocols")
    against the map-resolution channel: forged Map-Replies racing the
    legitimate answer, replayed stale replies, poisoned DNS answers,
    and cache-flooding EID scans.

    Strictly opt-in, following the {!Faults}/{!Lifecycle} pattern: the
    layer draws from its own dedicated {!Rng} stream, and every attack
    whose probability is zero takes {e no} draw, so a run without an
    attack profile is byte-identical to one compiled without the layer.

    The module decides whether an attack fires and counts attacker-side
    attempts; the protocol victims ([Mapsys.Pull], [Dnssim.System], the
    scenario flood driver) implement the injected behaviour. *)

type t

val create :
  rng:Rng.t ->
  ?spoof_rate:float ->
  ?spoof_head_start:float ->
  ?replay_rate:float ->
  ?dns_poison_rate:float ->
  ?flood_rate:float ->
  ?flood_eids:int ->
  ?flood_from:float ->
  ?flood_until:float ->
  unit ->
  t
(** [create ~rng ()] is an inert adversary: all rates default to zero.
    [spoof_rate] is the probability a map-request is raced by a forged
    reply, which arrives [spoof_head_start] seconds (default 2 ms)
    before the legitimate one could.  [replay_rate] is the probability
    a stale captured reply is replayed at a resolution.
    [dns_poison_rate] poisons the resolver-bound DNS answer.
    [flood_rate] > 0 enables the EID-scan flood: spoofed packets at
    that rate (per simulated second, Poisson) over [flood_eids]
    distinct forged source EIDs, active in [flood_from, flood_until).

    Raises [Invalid_argument] on probabilities outside [0, 1], a
    negative head start or flood rate, [flood_eids < 1], or an empty
    flood window given backwards. *)

(** {1 Attack draws}

    Each returns whether the attack fires on this occasion, drawing
    from the adversary stream only when the corresponding rate is
    positive, and counts fired attacks. *)

val forges_reply : t -> bool
val replays_reply : t -> bool
val poisons_answer : t -> bool

val spoof_head_start : t -> float
(** Seconds by which the forged reply beats the legitimate one. *)

val guess_nonce : t -> int
(** A blind uniform guess over the 32-bit nonce space — the off-path
    attacker never sees the request it is answering. *)

(** {1 EID-scan flood} *)

val flood_configured : t -> bool
(** Whether [flood_rate] > 0 (the scenario schedules a flood driver). *)

val flood_active : t -> now:float -> bool
val flood_interarrival : t -> float
(** Next Poisson gap, drawn from the adversary stream.  Raises if the
    flood is not configured. *)

val flood_eid_index : t -> int
(** Which of the [flood_eids] forged source EIDs the next scan packet
    claims; counts the packet. *)

val flood_eids : t -> int

(** {1 Attacker-side counters} *)

val forged_replies : t -> int
val replayed_replies : t -> int
val poisoned_answers : t -> int
val flood_packets : t -> int
