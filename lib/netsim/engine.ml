type event = {
  time : float;
  seq : int;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : float;
  mutable heap : event array;
  (* [heap] is a binary min-heap on (time, seq); [size] live prefix. *)
  mutable size : int;
  mutable next_seq : int;
  mutable live : int;
  mutable hwm : int;
  mutable fired : int;
}

let dummy_event = { time = 0.0; seq = -1; thunk = ignore; cancelled = true }

let create ?(start = 0.0) () =
  { clock = start; heap = Array.make 64 dummy_event; size = 0; next_seq = 0;
    live = 0; hwm = 0; fired = 0 }

(* Process-wide event count, across every engine instance: the bench
   runner's workers report events/sec from it, and an experiment may
   build one engine per (control plane × parameter) cell. *)
let total_fired = ref 0

let now t = t.clock
let pending t = t.live
let pending_hwm t = t.hwm
let events_processed t = t.fired
let total_events_processed () = !total_fired

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy_event in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let sift_up t i0 =
  let e = t.heap.(i0) in
  let rec loop i =
    if i = 0 then i
    else
      let parent = (i - 1) / 2 in
      if precedes e t.heap.(parent) then begin
        t.heap.(i) <- t.heap.(parent);
        loop parent
      end
      else i
  in
  t.heap.(loop i0) <- e

let sift_down t i0 =
  let e = t.heap.(i0) in
  let rec loop i =
    let left = (2 * i) + 1 in
    if left >= t.size then i
    else
      let right = left + 1 in
      let child =
        if right < t.size && precedes t.heap.(right) t.heap.(left) then right
        else left
      in
      if precedes t.heap.(child) e then begin
        t.heap.(i) <- t.heap.(child);
        loop child
      end
      else i
  in
  t.heap.(loop i0) <- e

let push t e =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy_event;
    sift_down t 0
  end
  else t.heap.(0) <- dummy_event;
  top

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let e = { time; seq = t.next_seq; thunk; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  if t.live > t.hwm then t.hwm <- t.live;
  push t e;
  e

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) thunk

let cancel t handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    t.live <- t.live - 1
  end

(* Every fired callback is charged to the "engine" profiler phase;
   instrumented subsystems nest their own phases inside it, so what
   remains as engine self-time is pure dispatch (heap ops plus
   uninstrumented callback bodies). *)
let ph_dispatch = Prof.phase "engine"

(* Discard cancelled events sitting at the top of the heap. *)
let rec drop_cancelled t =
  if t.size > 0 && t.heap.(0).cancelled then begin
    ignore (pop t);
    drop_cancelled t
  end

let step t =
  drop_cancelled t;
  if t.size = 0 then false
  else begin
    let e = pop t in
    t.clock <- e.time;
    t.live <- t.live - 1;
    t.fired <- t.fired + 1;
    incr total_fired;
    (* Mark as no longer live so cancelling an already-fired handle is a
       harmless no-op rather than corrupting the live count. *)
    e.cancelled <- true;
    if Prof.enabled () then begin
      Prof.enter ph_dispatch;
      (match e.thunk () with
      | () -> ()
      | exception ex ->
          Prof.leave ph_dispatch;
          raise ex);
      Prof.leave ph_dispatch
    end
    else e.thunk ();
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let rec loop () =
        drop_cancelled t;
        if t.size > 0 && t.heap.(0).time <= horizon then begin
          ignore (step t);
          loop ()
        end
      in
      loop ();
      if t.clock < horizon then t.clock <- horizon
