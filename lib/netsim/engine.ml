(* Discrete-event engine, rewritten for raw dispatch speed.

   The event queue is an implicit 4-ary min-heap on (time, seq) held in
   parallel flat arrays (structure-of-arrays): timestamps live in an
   unboxed [float array], so a sift compares contiguous unboxed floats
   instead of chasing per-event record pointers, and the event "record"
   never exists as a heap object at all — scheduling allocates nothing
   beyond the caller's own callback closure.

   Cancellation state lives in a recycled slot pool next to the heap.
   A handle is an immediate integer packing (engine id, slot
   generation, slot index); [cancel] validates the engine id (a handle
   used on the wrong engine raises instead of silently corrupting the
   other engine's live count) and the generation (a handle whose event
   already fired — and whose slot may have been recycled — is a no-op,
   as before).  Cancelled events are reaped lazily at the heap top;
   when more than half the queued events are cancelled the heap is
   compacted in place, so a burst of long-dated cancels (retransmit
   timers cleared on success) cannot bloat the heap or [pending_hwm]'s
   denominator in memory terms.

   [Shards] adds opt-in in-process parallel dispatch: N independent
   engines, one OCaml 5 [Domain] each.  Shards must not share mutable
   simulation state; determinism of any merged output comes from
   merging by simulated (time, shard) order — see [Trace.merge]. *)

type t = {
  id : int;
  mutable clock : float;
  (* Heap: SoA 4-ary min-heap on (time, seq); indices [0, size). *)
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable h_thunk : (unit -> unit) array;
  mutable h_slot : int array;
  mutable size : int;
  mutable next_seq : int;
  (* Slot pool: per-event cancellation state, free-list recycled. *)
  mutable s_state : Bytes.t; (* '\000' free, '\001' pending, '\002' cancelled *)
  mutable s_gen : int array;
  mutable s_next : int array; (* free-list links through free slots *)
  mutable free_head : int;
  mutable s_cap : int;
  (* Counters. *)
  mutable live : int;
  mutable cancelled_pending : int; (* cancelled but still in the heap *)
  mutable hwm : int;
  mutable fired : int;
  mutable compacted : int;
}

type handle = int

(* Handle layout (62 bits of an OCaml int): slot index in the low 24
   bits, slot generation in the next 20, engine id in the top 18.
   Generations and engine ids wrap; a stale handle aliasing a live one
   therefore needs the same slot to be recycled exactly 2^20 times (or
   2^18 engines to share an id AND collide on slot+generation) —
   negligible against the seed behaviour, which corrupted the count on
   every cross-engine cancel. *)
let slot_bits = 24
let gen_bits = 20
let id_bits = 18
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl gen_bits) - 1
let id_mask = (1 lsl id_bits) - 1

let st_free = '\000'
let st_pending = '\001'
let st_cancelled = '\002'

(* Engine ids come off a process-wide atomic so sharded dispatch can
   create engines from any domain. *)
let next_engine_id = Atomic.make 1

(* Process-wide event count, across every engine instance: the bench
   runner's workers report events/sec from it, and an experiment may
   build one engine per (control plane × parameter) cell.  An
   [Atomic.t] because sharded dispatch fires events from several
   domains at once; the hot loop batches its contribution and flushes
   once per [run]/[step] so the shared cache line is not contended on
   every event. *)
let total_fired = Atomic.make 0

let no_thunk = ignore

let initial_heap = 256
let initial_slots = 256

let create ?(start = 0.0) () =
  let s_cap = initial_slots in
  let s_next = Array.init s_cap (fun i -> i + 1) in
  s_next.(s_cap - 1) <- -1;
  { id = Atomic.fetch_and_add next_engine_id 1 land id_mask;
    clock = start;
    h_time = Array.make initial_heap 0.0;
    h_seq = Array.make initial_heap 0;
    h_thunk = Array.make initial_heap no_thunk;
    h_slot = Array.make initial_heap 0;
    size = 0; next_seq = 0;
    s_state = Bytes.make s_cap st_free;
    s_gen = Array.make s_cap 0;
    s_next; free_head = 0; s_cap;
    live = 0; cancelled_pending = 0; hwm = 0; fired = 0; compacted = 0 }

let now t = t.clock
let pending t = t.live
let pending_hwm t = t.hwm
let events_processed t = t.fired
let compactions t = t.compacted
let total_events_processed () = Atomic.get total_fired

(* ------------------------------------------------------------------ *)
(* Slot pool                                                           *)
(* ------------------------------------------------------------------ *)

let grow_slots t =
  let cap = 2 * t.s_cap in
  let state = Bytes.make cap st_free in
  Bytes.blit t.s_state 0 state 0 t.s_cap;
  let gen = Array.make cap 0 in
  Array.blit t.s_gen 0 gen 0 t.s_cap;
  let next = Array.init cap (fun i -> i + 1) in
  Array.blit t.s_next 0 next 0 t.s_cap;
  next.(cap - 1) <- t.free_head;
  t.free_head <- t.s_cap;
  t.s_state <- state;
  t.s_gen <- gen;
  t.s_next <- next;
  t.s_cap <- cap

(* Slot indices are always < s_cap by construction, so pool accesses
   below are unsafe. *)

let alloc_slot t =
  if t.free_head < 0 then grow_slots t;
  let s = t.free_head in
  t.free_head <- Array.unsafe_get t.s_next s;
  Bytes.unsafe_set t.s_state s st_pending;
  s

let free_slot t s =
  Bytes.unsafe_set t.s_state s st_free;
  (* Bump the generation so any still-held handle goes stale. *)
  Array.unsafe_set t.s_gen s ((Array.unsafe_get t.s_gen s + 1) land gen_mask);
  Array.unsafe_set t.s_next s t.free_head;
  t.free_head <- s

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let grow_heap t =
  let cap = 2 * Array.length t.h_time in
  let time = Array.make cap 0.0 in
  Array.blit t.h_time 0 time 0 t.size;
  let seq = Array.make cap 0 in
  Array.blit t.h_seq 0 seq 0 t.size;
  let thunk = Array.make cap no_thunk in
  Array.blit t.h_thunk 0 thunk 0 t.size;
  let slot = Array.make cap 0 in
  Array.blit t.h_slot 0 slot 0 t.size;
  t.h_time <- time;
  t.h_seq <- seq;
  t.h_thunk <- thunk;
  t.h_slot <- slot

(* Hole-based sifts: the moving event is held in locals, others shift
   once, and it is written exactly once at its final position.  The
   hot-path sifts are written inline inside [schedule_at] and
   [remove_top]: without flambda, a float crossing a function boundary
   is boxed, and a shared sift helper would cost one minor allocation
   per heap operation.  This generic sift_down stays for the cold
   compaction path only. *)

let sift_down t i0 ~time ~seq ~thunk ~slot =
  let ht = t.h_time and hs = t.h_seq in
  let n = t.size in
  let i = ref i0 in
  let stop = ref false in
  while not !stop do
    let first = (4 * !i) + 1 in
    if first >= n then stop := true
    else begin
      (* Min of up to four children. *)
      let last = Stdlib.min (first + 3) (n - 1) in
      let best = ref first in
      let bt = ref (Array.unsafe_get ht first) in
      let bs = ref (Array.unsafe_get hs first) in
      for c = first + 1 to last do
        let ct = Array.unsafe_get ht c in
        if ct < !bt || (ct = !bt && Array.unsafe_get hs c < !bs) then begin
          best := c;
          bt := ct;
          bs := Array.unsafe_get hs c
        end
      done;
      if !bt < time || (!bt = time && !bs < seq) then begin
        Array.unsafe_set ht !i !bt;
        Array.unsafe_set hs !i !bs;
        Array.unsafe_set t.h_thunk !i (Array.unsafe_get t.h_thunk !best);
        Array.unsafe_set t.h_slot !i (Array.unsafe_get t.h_slot !best);
        i := !best
      end
      else stop := true
    end
  done;
  Array.unsafe_set ht !i time;
  Array.unsafe_set hs !i seq;
  Array.unsafe_set t.h_thunk !i thunk;
  Array.unsafe_set t.h_slot !i slot

(* Remove the heap top (caller has already read its fields): move the
   last entry into the hole at the root and sift it down.  The sift is
   inline so the moving timestamp stays an unboxed local. *)
let remove_top t =
  let n = t.size - 1 in
  t.size <- n;
  let thunk = Array.unsafe_get t.h_thunk n in
  Array.unsafe_set t.h_thunk n no_thunk; (* release the closure for the GC *)
  if n > 0 then begin
    let ht = t.h_time and hs = t.h_seq in
    let time = Array.unsafe_get ht n in
    let seq = Array.unsafe_get hs n in
    let slot = Array.unsafe_get t.h_slot n in
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let first = (4 * !i) + 1 in
      if first >= n then stop := true
      else begin
        let last = if first + 3 < n - 1 then first + 3 else n - 1 in
        let best = ref first in
        let bt = ref (Array.unsafe_get ht first) in
        let bs = ref (Array.unsafe_get hs first) in
        for c = first + 1 to last do
          let ct = Array.unsafe_get ht c in
          if ct < !bt || (ct = !bt && Array.unsafe_get hs c < !bs) then begin
            best := c;
            bt := ct;
            bs := Array.unsafe_get hs c
          end
        done;
        if !bt < time || (!bt = time && !bs < seq) then begin
          Array.unsafe_set ht !i !bt;
          Array.unsafe_set hs !i !bs;
          Array.unsafe_set t.h_thunk !i (Array.unsafe_get t.h_thunk !best);
          Array.unsafe_set t.h_slot !i (Array.unsafe_get t.h_slot !best);
          i := !best
        end
        else stop := true
      end
    done;
    Array.unsafe_set ht !i time;
    Array.unsafe_set hs !i seq;
    Array.unsafe_set t.h_thunk !i thunk;
    Array.unsafe_set t.h_slot !i slot
  end

(* In-place compaction: drop every cancelled event, then Floyd-heapify
   the survivors.  Order is untouched — (time, seq) fully determines
   it — and the freed slots recycle immediately. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let s = t.h_slot.(i) in
    if Bytes.unsafe_get t.s_state s = st_cancelled then free_slot t s
    else begin
      if !j < i then begin
        t.h_time.(!j) <- t.h_time.(i);
        t.h_seq.(!j) <- t.h_seq.(i);
        t.h_thunk.(!j) <- t.h_thunk.(i);
        t.h_slot.(!j) <- t.h_slot.(i)
      end;
      incr j
    end
  done;
  for i = !j to t.size - 1 do
    t.h_thunk.(i) <- no_thunk
  done;
  t.size <- !j;
  t.cancelled_pending <- 0;
  for i = ((t.size - 2) / 4) downto 0 do
    sift_down t i ~time:t.h_time.(i) ~seq:t.h_seq.(i) ~thunk:t.h_thunk.(i)
      ~slot:t.h_slot.(i)
  done;
  t.compacted <- t.compacted + 1

(* Compact once cancelled events are both numerous and the majority:
   the threshold keeps small queues O(1) and makes the amortised cost
   of a cancel constant. *)
let compact_min = 64

let maybe_compact t =
  if t.cancelled_pending >= compact_min && 2 * t.cancelled_pending > t.size
  then compact t

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let schedule_at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let s = alloc_slot t in
  if t.size = Array.length t.h_time then grow_heap t;
  (* Inline sift-up (see the note above the heap section). *)
  let ht = t.h_time and hs = t.h_seq in
  let i = ref t.size in
  t.size <- t.size + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 4 in
    let pt = Array.unsafe_get ht p in
    if time < pt || (time = pt && seq < Array.unsafe_get hs p) then begin
      Array.unsafe_set ht !i pt;
      Array.unsafe_set hs !i (Array.unsafe_get hs p);
      Array.unsafe_set t.h_thunk !i (Array.unsafe_get t.h_thunk p);
      Array.unsafe_set t.h_slot !i (Array.unsafe_get t.h_slot p);
      i := p
    end
    else stop := true
  done;
  Array.unsafe_set ht !i time;
  Array.unsafe_set hs !i seq;
  Array.unsafe_set t.h_thunk !i thunk;
  Array.unsafe_set t.h_slot !i s;
  t.live <- t.live + 1;
  if t.live > t.hwm then t.hwm <- t.live;
  s
  lor (Array.unsafe_get t.s_gen s lsl slot_bits)
  lor (t.id lsl (slot_bits + gen_bits))

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) thunk

let cancel t h =
  if (h lsr (slot_bits + gen_bits)) land id_mask <> t.id then
    invalid_arg "Engine.cancel: handle belongs to a different engine";
  let s = h land slot_mask in
  if
    s < t.s_cap
    && t.s_gen.(s) = (h lsr slot_bits) land gen_mask
    && Bytes.unsafe_get t.s_state s = st_pending
  then begin
    Bytes.unsafe_set t.s_state s st_cancelled;
    t.live <- t.live - 1;
    t.cancelled_pending <- t.cancelled_pending + 1;
    maybe_compact t
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Every fired callback is charged to the "engine" profiler phase;
   instrumented subsystems nest their own phases inside it, so what
   remains as engine self-time is pure dispatch (heap ops plus
   uninstrumented callback bodies). *)
let ph_dispatch = Prof.phase "engine"

(* Fire the heap top (assumed pending, time already read).  Returns
   after running the callback; exceptions propagate. *)
let fire_top t time =
  let thunk = t.h_thunk.(0) in
  free_slot t t.h_slot.(0);
  remove_top t;
  t.clock <- time;
  t.live <- t.live - 1;
  t.fired <- t.fired + 1;
  if Prof.enabled () then begin
    Prof.enter ph_dispatch;
    (match thunk () with
    | () -> ()
    | exception ex ->
        Prof.leave ph_dispatch;
        raise ex);
    Prof.leave ph_dispatch
  end
  else thunk ()

(* Discard cancelled events sitting at the top of the heap.  They do
   not advance the clock. *)
let rec drop_cancelled t =
  if t.size > 0 && Bytes.unsafe_get t.s_state t.h_slot.(0) = st_cancelled
  then begin
    free_slot t t.h_slot.(0);
    t.cancelled_pending <- t.cancelled_pending - 1;
    remove_top t;
    drop_cancelled t
  end

let step t =
  drop_cancelled t;
  if t.size = 0 then false
  else begin
    (match fire_top t t.h_time.(0) with
    | () -> ()
    | exception ex ->
        Atomic.incr total_fired;
        raise ex);
    Atomic.incr total_fired;
    true
  end

let run ?until t =
  (* The hot loop counts fired events locally and flushes the shared
     atomic once at exit, so sharded dispatch does not contend on the
     global cache line per event. *)
  let fired0 = t.fired in
  let flush () =
    let n = t.fired - fired0 in
    if n > 0 then ignore (Atomic.fetch_and_add total_fired n)
  in
  (* Inlined drop-cancelled + fire: one bounds-free pass over the heap
     top per iteration. *)
  let dispatch_until horizon =
    let stop = ref false in
    while not !stop do
      if t.size = 0 then stop := true
      else begin
        let s = Array.unsafe_get t.h_slot 0 in
        if Bytes.unsafe_get t.s_state s = st_cancelled then begin
          (* Cancelled events do not advance the clock. *)
          free_slot t s;
          t.cancelled_pending <- t.cancelled_pending - 1;
          remove_top t
        end
        else begin
          let time = Array.unsafe_get t.h_time 0 in
          if time > horizon then stop := true
          else begin
            let thunk = Array.unsafe_get t.h_thunk 0 in
            free_slot t s;
            remove_top t;
            t.clock <- time;
            t.live <- t.live - 1;
            t.fired <- t.fired + 1;
            if Prof.enabled () then begin
              Prof.enter ph_dispatch;
              (match thunk () with
              | () -> ()
              | exception ex ->
                  Prof.leave ph_dispatch;
                  raise ex);
              Prof.leave ph_dispatch
            end
            else thunk ()
          end
        end
      end
    done
  in
  (match until with
  | None -> (
      match dispatch_until infinity with
      | () -> ()
      | exception ex ->
          flush ();
          raise ex)
  | Some horizon -> (
      match dispatch_until horizon with
      | () -> if t.clock < horizon then t.clock <- horizon
      | exception ex ->
          flush ();
          raise ex));
  flush ()

(* ------------------------------------------------------------------ *)
(* Sharded dispatch                                                    *)
(* ------------------------------------------------------------------ *)

module Shards = struct
  type engine = t

  type pool = { engines : engine array }

  let create ?start n =
    if n < 1 then invalid_arg "Engine.Shards.create: need at least one shard";
    { engines = Array.init n (fun _ -> create ?start ()) }

  let count p = Array.length p.engines
  let get p i = p.engines.(i)

  let events_processed p =
    Array.fold_left (fun acc e -> acc + e.fired) 0 p.engines

  let pending p = Array.fold_left (fun acc e -> acc + e.live) 0 p.engines

  let run ?until ?(parallel = true) p =
    let n = Array.length p.engines in
    if (not parallel) || n = 1 then
      Array.iter (fun e -> run ?until e) p.engines
    else begin
      (* The self-profiler's phase stack is process-global and
         single-domain; pause it around the parallel section so
         concurrent enter/leave cannot corrupt it.  Sharded dispatch
         throughput is measured by the bench harness directly. *)
      let prof_was_on = Prof.enabled () in
      if prof_was_on then Prof.pause ();
      let spawned =
        Array.init (n - 1) (fun i ->
            let e = p.engines.(i + 1) in
            Domain.spawn (fun () -> run ?until e))
      in
      let first_error = ref None in
      (match run ?until p.engines.(0) with
      | () -> ()
      | exception ex -> first_error := Some ex);
      Array.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception ex ->
              if !first_error = None then first_error := Some ex)
        spawned;
      if prof_was_on then Prof.resume ();
      match !first_error with None -> () | Some ex -> raise ex
    end
end
