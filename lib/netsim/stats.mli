(** Online statistics for simulation measurements.

    Four collectors cover the experiments' needs: {!Summary} for
    streaming mean/variance, {!Samples} for quantiles and CDF export
    (exact by default, bounded-memory reservoir sampling for
    million-flow runs), {!P2} for O(1)-memory single-quantile tracking,
    and {!Histogram} for fixed-bin densities.  {!jain_index} computes
    the fairness metric used by the traffic-engineering experiments. *)

module Summary : sig
  (** Welford's streaming mean and variance. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val total : t -> float
end

module Samples : sig
  (** Quantiles over observations, stored unboxed ([floatarray]).

      [Exact] mode (the default) stores every observation and reports
      exact order statistics.  [Reservoir k] keeps a uniform random
      sample of at most [k] observations (Vitter's algorithm R, with a
      deterministic internal stream so runs are reproducible): memory
      stays O(k) while count and mean remain exact, and quantiles become
      unbiased estimates — the mode the 100k–1M-flow scale experiments
      run in. *)

  type t

  type mode = Exact | Reservoir of int

  val create : ?mode:mode -> unit -> t
  (** Default [Exact].  Raises [Invalid_argument] when the reservoir
      capacity is not positive. *)

  val add : t -> float -> unit

  val count : t -> int
  (** Observations offered, regardless of how many were retained. *)

  val retained : t -> int
  (** Observations currently stored: equal to {!count} in [Exact] mode,
      bounded by the capacity in [Reservoir] mode. *)

  val mean : t -> float
  (** Exact streaming mean over every observation, in both modes. *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]], linear interpolation
      between order statistics of the retained observations (exact in
      [Exact] mode, estimated in [Reservoir] mode).  Raises
      [Invalid_argument] when empty or [p] out of range. *)

  val median : t -> float

  val cdf : ?points:int -> t -> (float * float) list
  (** [(value, fraction <= value)] pairs suitable for plotting; [points]
      (default 50) evenly spaced in rank over the retained observations.
      Empty list when empty. *)

  val to_list : t -> float list
  (** Retained observations in storage order (insertion order in [Exact]
      mode). *)
end

module P2 : sig
  (** The P² algorithm (Jain & Chlamtac, 1985): tracks one quantile with
      five markers — O(1) memory and O(1) update, no samples stored.
      Typical estimation error is well under a percent of the value
      range once a few hundred observations have arrived. *)

  type t

  val create : p:float -> t
  (** [create ~p] tracks the [p]-th percentile, [p] in (0, 100)
      exclusive.  Raises [Invalid_argument] otherwise. *)

  val add : t -> float -> unit
  val count : t -> int

  val quantile : t -> float
  (** Current estimate; exact while fewer than five observations have
      been seen.  Raises [Invalid_argument] when empty. *)
end

module Histogram : sig
  (** Fixed-width bins over [\[lo, hi)]; out-of-range values are clamped
      into the edge bins so nothing is silently dropped.  NaN samples are
      counted separately — they land in no bin and are excluded from
      {!count} and {!fraction_below}. *)

  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit

  val count : t -> int
  (** Binned (non-NaN) observations. *)

  val nan_count : t -> int
  (** NaN observations rejected by {!add}. *)

  val bin_count : t -> int

  val bin : t -> int -> float * float * int
  (** [bin t i] is [(lower_edge, upper_edge, occupancy)]. *)

  val fraction_below : t -> float -> float
  (** Fraction of binned observations in bins entirely below the given
      value. *)
end

val jain_index : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1 when perfectly balanced,
    [1/n] when one element carries everything.  Defined as 1.0 for empty
    or all-zero input. *)
