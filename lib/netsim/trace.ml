(* Timeline log stored as a structure-of-arrays ring buffer: times in
   an unboxed [float array], actors/events in parallel string arrays.
   Recording an entry writes three array cells — no per-entry record
   or queue cell is allocated, and a capacity bound overwrites in
   place instead of popping.  The [entry] record only materialises on
   the read side ([entries], [find]). *)

type entry = { time : float; actor : string; event : string }

type t = {
  mutable times : float array;
  mutable actors : string array;
  mutable events : string array;
  mutable cap : int; (* current array capacity *)
  bound : int option; (* user-facing retention bound *)
  mutable start : int; (* index of the oldest retained entry *)
  mutable len : int; (* retained entries *)
  mutable count : int; (* total ever recorded *)
  mutable on : bool;
}

let initial_cap = 16

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 ->
      invalid_arg "Trace.create: capacity must be positive"
  | Some _ | None -> ());
  let cap =
    match capacity with
    | Some c -> Stdlib.min c initial_cap
    | None -> initial_cap
  in
  { times = Array.make cap 0.0;
    actors = Array.make cap "";
    events = Array.make cap "";
    cap;
    bound = capacity;
    start = 0;
    len = 0;
    count = 0;
    on = true }

let enabled t = t.on
let set_enabled t on = t.on <- on

(* Recording is cheap enough post-rewrite that per-entry phase timing
   (two clock reads) would dominate it; emission volume is tracked by
   a profiler counter instead, and only [recordf]'s formatting — the
   genuinely expensive part — is timed under the "trace" phase. *)
let ph_trace = Prof.phase "trace"
let c_records = Prof.counter "trace.records"

let grow t =
  (* Only reached before any eviction, so the live region starts at 0. *)
  let cap =
    match t.bound with
    | Some b -> Stdlib.min b (2 * t.cap)
    | None -> 2 * t.cap
  in
  let times = Array.make cap 0.0 in
  Array.blit t.times 0 times 0 t.len;
  let actors = Array.make cap "" in
  Array.blit t.actors 0 actors 0 t.len;
  let events = Array.make cap "" in
  Array.blit t.events 0 events 0 t.len;
  t.times <- times;
  t.actors <- actors;
  t.events <- events;
  t.cap <- cap

let record t ~time ~actor event =
  if t.on then begin
    Prof.incr c_records;
    let full_bound = match t.bound with Some b -> t.len = b | None -> false in
    if full_bound then begin
      (* Ring is at its bound: overwrite the oldest slot. *)
      let i = t.start in
      t.times.(i) <- time;
      t.actors.(i) <- actor;
      t.events.(i) <- event;
      t.start <- (if i + 1 = t.cap then 0 else i + 1)
    end
    else begin
      if t.len = t.cap then grow t;
      let i = t.start + t.len in
      let i = if i >= t.cap then i - t.cap else i in
      t.times.(i) <- time;
      t.actors.(i) <- actor;
      t.events.(i) <- event;
      t.len <- t.len + 1
    end;
    t.count <- t.count + 1
  end

let recordf t ~time ~actor fmt =
  (* Short-circuit before formatting: a disabled trace must not pay the
     kasprintf rendering/allocation cost on hot paths.  Formatting is
     charged to the "trace" phase. *)
  if t.on then begin
    Prof.enter ph_trace;
    Format.kasprintf
      (fun event ->
        Prof.leave ph_trace;
        record t ~time ~actor event)
      fmt
  end
  else Format.ikfprintf ignore Format.err_formatter fmt

let nth t i =
  let j = t.start + i in
  let j = if j >= t.cap then j - t.cap else j in
  { time = t.times.(j); actor = t.actors.(j); event = t.events.(j) }

let iter t ~f =
  for i = 0 to t.len - 1 do
    let j = t.start + i in
    let j = if j >= t.cap then j - t.cap else j in
    f t.times.(j) t.actors.(j) t.events.(j)
  done

let entries t = List.init t.len (nth t)
let length t = t.count
let retained t = t.len

let clear t =
  (* Drop string references so the GC can reclaim them. *)
  Array.fill t.actors 0 t.cap "";
  Array.fill t.events 0 t.cap "";
  t.start <- 0;
  t.len <- 0;
  t.count <- 0

let pp ppf t =
  let actor_width = ref 0 in
  iter t ~f:(fun _ actor _ ->
      if String.length actor > !actor_width then
        actor_width := String.length actor);
  iter t ~f:(fun time actor event ->
      Format.fprintf ppf "t=%10.6fs  %-*s  %s@." time !actor_width actor event)

let find t ~f =
  let result = ref None in
  (try
     for i = 0 to t.len - 1 do
       let e = nth t i in
       if f e then begin
         result := Some e;
         raise Exit
       end
     done
   with Exit -> ());
  !result

(* Deterministic cross-shard merge: entries ordered by [(time, shard,
   per-shard order)], i.e. a stable sort of the concatenation keyed on
   time with the shard's position in [traces] as the tiebreak.  Two
   runs of the same sharded simulation produce byte-identical merged
   traces regardless of domain interleaving, because each shard's
   trace is deterministic in isolation and the merge key ignores
   wall-clock arrival entirely. *)
let merge traces =
  let total = List.fold_left (fun acc t -> acc + t.len) 0 traces in
  (* (time, shard, idx) keys alongside the entry data. *)
  let keys = Array.make (Stdlib.max 1 total) (0.0, 0, 0) in
  let pos = ref 0 in
  List.iteri
    (fun shard t ->
      for i = 0 to t.len - 1 do
        keys.(!pos) <- (nth t i).time, shard, i;
        incr pos
      done)
    traces;
  let keys = Array.sub keys 0 total in
  Array.sort
    (fun (t1, s1, i1) (t2, s2, i2) ->
      match Float.compare t1 t2 with
      | 0 -> ( match Int.compare s1 s2 with 0 -> Int.compare i1 i2 | c -> c)
      | c -> c)
    keys;
  let by_shard = Array.of_list traces in
  let out = create () in
  Array.iter
    (fun (_, shard, i) ->
      let e = nth by_shard.(shard) i in
      record out ~time:e.time ~actor:e.actor e.event)
    keys;
  out
