type entry = { time : float; actor : string; event : string }

type t = {
  entries : entry Queue.t; (* oldest first; bounded by [capacity] *)
  capacity : int option;
  mutable count : int;
  mutable on : bool;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 ->
      invalid_arg "Trace.create: capacity must be positive"
  | Some _ | None -> ());
  { entries = Queue.create (); capacity; count = 0; on = true }

let enabled t = t.on
let set_enabled t on = t.on <- on

let ph_trace = Prof.phase "trace"

let record t ~time ~actor event =
  if t.on then begin
    Prof.enter ph_trace;
    Queue.push { time; actor; event } t.entries;
    (match t.capacity with
    | Some c when Queue.length t.entries > c -> ignore (Queue.pop t.entries)
    | Some _ | None -> ());
    t.count <- t.count + 1;
    Prof.leave ph_trace
  end

let recordf t ~time ~actor fmt =
  (* Short-circuit before formatting: a disabled trace must not pay the
     kasprintf rendering/allocation cost on hot paths.  Formatting is
     charged to the "trace" phase via a profiled continuation. *)
  if t.on then
    Format.kasprintf
      (fun event -> record t ~time ~actor event)
      fmt
  else Format.ikfprintf ignore Format.err_formatter fmt

let entries t = List.of_seq (Queue.to_seq t.entries)
let length t = t.count
let retained t = Queue.length t.entries

let clear t =
  Queue.clear t.entries;
  t.count <- 0

let pp ppf t =
  let actor_width =
    Queue.fold (fun acc e -> Stdlib.max acc (String.length e.actor)) 0 t.entries
  in
  Queue.iter
    (fun e ->
      Format.fprintf ppf "t=%10.6fs  %-*s  %s@." e.time actor_width e.actor
        e.event)
    t.entries

let find t ~f = List.find_opt f (entries t)
