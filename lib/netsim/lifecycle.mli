(** Node-lifecycle fault injection: scheduled crash/restart windows.

    Where {!Faults} loses individual {e messages}, a [Lifecycle.t]
    takes whole {e nodes} down for declared intervals of simulated
    time, with state-loss semantics decided by the component that owns
    the node's state (a crashed PCE loses its in-memory flow database;
    a crashed DNS server simply stops answering; a crashed map-server
    stops replying to map-requests).

    The model itself is passive and purely deterministic: it answers
    {!is_down} queries and enumerates its {!windows} so the scenario
    layer can schedule the crash and restart transitions as engine
    events.  It draws no randomness and keeps no counters, so wiring
    an empty lifecycle into a run perturbs nothing — the strict
    opt-in discipline of the message-loss layer applies here too.

    Roles are topology-agnostic, mirroring {!Faults} endpoints: PCE
    and DNS-server roles carry the domain id; the (global) map-server
    of the pull mapping system is a singleton role. *)

type role =
  | Pce of int  (** the PCE co-located with domain [id]'s DNS server *)
  | Dns_server of int  (** domain [id]'s DNS server / resolver *)
  | Map_server  (** the pull mapping system's server side *)

type t

val create : unit -> t
(** No windows: every role is permanently up. *)

val add_window : t -> role:role -> from_:float -> until:float -> unit
(** The role is down (crashed) for [from_ <= now < until].  [until] may
    be [infinity] (never restarts).  Raises [Invalid_argument] on an
    inverted window ([until <= from_]) or a negative [from_]. *)

val is_down : t -> role:role -> now:float -> bool

val windows : t -> (role * float * float) list
(** All windows in insertion order, for scheduling crash/restart
    transitions as engine events. *)

val window_count : t -> int

val role_label : role -> string
(** ["pce(3)"], ["dns(0)"], ["map-server"] — for traces and errors. *)
