type role = Pce of int | Dns_server of int | Map_server

type window = { role : role; from_ : float; until : float }

type t = { mutable windows : window list (* insertion order, kept reversed *) }

let create () = { windows = [] }

let role_label = function
  | Pce d -> Printf.sprintf "pce(%d)" d
  | Dns_server d -> Printf.sprintf "dns(%d)" d
  | Map_server -> "map-server"

let add_window t ~role ~from_ ~until =
  if from_ < 0.0 then invalid_arg "Lifecycle.add_window: negative crash time";
  if until <= from_ then
    invalid_arg
      (Printf.sprintf
         "Lifecycle.add_window: %s window [%g, %g) ends before it starts"
         (role_label role) from_ until);
  t.windows <- { role; from_; until } :: t.windows

let is_down t ~role ~now =
  List.exists
    (fun w -> w.role = role && now >= w.from_ && now < w.until)
    t.windows

let windows t =
  List.rev_map (fun w -> (w.role, w.from_, w.until)) t.windows

let window_count t = List.length t.windows
