(* Self-profiler internals.  Everything lives in flat pre-allocated
   arrays indexed by phase id so the enabled hot path touches no heap
   and the disabled one is a single flag test.  The module is
   process-global: the simulator is single-domain and the bench runner
   forks one process per experiment, so global state is the cheap and
   correct choice. *)

type phase = int

let max_phases = 64
let max_depth = 1024

(* Real clock: CLOCK_MONOTONIC in nanoseconds via bechamel's noalloc
   stub, converted to float seconds.  Reading it allocates nothing but
   the boxed float result, and only runs while the profiler is on. *)
let monotonic_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let clock = ref monotonic_s
let set_clock_for_testing = function
  | Some f -> clock := f
  | None -> clock := monotonic_s

(* Phase registry. *)
let n_phases = ref 0
let names = Array.make max_phases ""

let phase name =
  let rec find i =
    if i >= !n_phases then begin
      if !n_phases >= max_phases then
        invalid_arg "Prof.phase: too many phases";
      let id = !n_phases in
      names.(id) <- name;
      incr n_phases;
      id
    end
    else if String.equal names.(i) name then i
    else find (i + 1)
  in
  find 0

let phase_name ph = names.(ph)

(* Accumulators. *)
let self_s = Array.make max_phases 0.0
let total_s = Array.make max_phases 0.0
let calls = Array.make max_phases 0
let active = Array.make max_phases 0
let act_start = Array.make max_phases 0.0

(* Phase stack: the id on top owns the clock from [last_mark] on. *)
let stack = Array.make max_depth 0
let frame_start = Array.make max_depth 0.0
let depth = ref 0
let last_mark = ref 0.0

let on = ref false
let paused = ref false
let pause_at = ref 0.0
let paused_total = ref 0.0
let origin = ref 0.0
let stopped_at = ref 0.0
let stopped = ref false

let enabled () = !on
let set_enabled b = on := b

(* Counters: a second small registry, same flat-array shape. *)
type counter = int

let max_counters = 64
let n_counters = ref 0
let counter_names = Array.make max_counters ""
let counts = Array.make max_counters 0

let counter name =
  let rec find i =
    if i >= !n_counters then begin
      if !n_counters >= max_counters then
        invalid_arg "Prof.counter: too many counters";
      let id = !n_counters in
      counter_names.(id) <- name;
      incr n_counters;
      id
    end
    else if String.equal counter_names.(i) name then i
    else find (i + 1)
  in
  find 0

let add c n = if !on then counts.(c) <- counts.(c) + n
let incr c = add c 1

(* Interval ring for the Chrome-trace self-profile.  Fixed-capacity
   parallel arrays; once full we count drops rather than grow, so a
   long run can't eat the heap behind the user's back. *)
let recording = ref false
let iv_cap = ref 0
let iv_phase = ref [||]
let iv_start = ref [||]
let iv_dur = ref [||]
let iv_depth = ref [||]
let iv_count = ref 0
let iv_dropped = ref 0

let set_record_intervals ?(cap = 200_000) flag =
  recording := flag;
  iv_count := 0;
  iv_dropped := 0;
  if flag && !iv_cap <> cap then begin
    iv_cap := cap;
    iv_phase := Array.make cap 0;
    iv_start := Array.make cap 0.0;
    iv_dur := Array.make cap 0.0;
    iv_depth := Array.make cap 0
  end

let record_interval ph start_t dur d =
  if !iv_count < !iv_cap then begin
    !iv_phase.(!iv_count) <- ph;
    !iv_start.(!iv_count) <- start_t -. !origin;
    !iv_dur.(!iv_count) <- dur;
    !iv_depth.(!iv_count) <- d;
    Stdlib.incr iv_count
  end
  else Stdlib.incr iv_dropped

type interval = {
  iv_name : string;
  iv_start_s : float;
  iv_dur_s : float;
  iv_depth : int;
}

let intervals () =
  List.init !iv_count (fun i ->
      {
        iv_name = names.(!iv_phase.(i));
        iv_start_s = !iv_start.(i);
        iv_dur_s = !iv_dur.(i);
        iv_depth = !iv_depth.(i);
      })

let intervals_dropped () = !iv_dropped

(* Hot path. *)

let enter ph =
  if !on then begin
    let t = !clock () in
    let d = !depth in
    if d > 0 then begin
      let top = stack.(d - 1) in
      self_s.(top) <- self_s.(top) +. (t -. !last_mark)
    end;
    last_mark := t;
    if d < max_depth then begin
      stack.(d) <- ph;
      frame_start.(d) <- t;
      depth := d + 1
    end;
    calls.(ph) <- calls.(ph) + 1;
    if active.(ph) = 0 then act_start.(ph) <- t;
    active.(ph) <- active.(ph) + 1
  end

let leave ph =
  if !on then begin
    let t = !clock () in
    let d = !depth in
    if d > 0 then begin
      let top = stack.(d - 1) in
      self_s.(top) <- self_s.(top) +. (t -. !last_mark);
      depth := d - 1;
      if !recording then
        record_interval top frame_start.(d - 1) (t -. frame_start.(d - 1))
          (d - 1)
    end;
    last_mark := t;
    if active.(ph) > 0 then begin
      active.(ph) <- active.(ph) - 1;
      if active.(ph) = 0 then
        total_s.(ph) <- total_s.(ph) +. (t -. act_start.(ph))
    end
  end

let with_phase ph f =
  enter ph;
  match f () with
  | v ->
      leave ph;
      v
  | exception e ->
      leave ph;
      raise e

let wrap ph k =
  if not !on then k
  else
    fun () ->
      enter ph;
      (match k () with
      | () -> ()
      | exception e ->
          leave ph;
          raise e);
      leave ph

let now_s () = !clock ()

(* Lifecycle. *)

let start () =
  for i = 0 to !n_phases - 1 do
    self_s.(i) <- 0.0;
    total_s.(i) <- 0.0;
    calls.(i) <- 0;
    active.(i) <- 0;
    act_start.(i) <- 0.0
  done;
  for i = 0 to !n_counters - 1 do
    counts.(i) <- 0
  done;
  depth := 0;
  iv_count := 0;
  iv_dropped := 0;
  paused := false;
  paused_total := 0.0;
  stopped := false;
  let t = !clock () in
  origin := t;
  last_mark := t;
  on := true

let stop () =
  if !on then begin
    (* Force-close whatever is still open so self/total partitions add
       up even when the caller stops mid-phase (e.g. after an
       exception unwound past the instrumentation). *)
    while !depth > 0 do
      leave stack.(!depth - 1)
    done;
    stopped_at := !clock ();
    stopped := true;
    on := false
  end

let pause () =
  if !on && not !paused then begin
    let t = !clock () in
    if !depth > 0 then begin
      let top = stack.(!depth - 1) in
      self_s.(top) <- self_s.(top) +. (t -. !last_mark)
    end;
    pause_at := t;
    paused := true;
    on := false
  end

let resume () =
  if !paused then begin
    let t = !clock () in
    let gap = t -. !pause_at in
    paused_total := !paused_total +. gap;
    (* Open activations and stack frames must not absorb the pause:
       shift their start marks forward by the gap. *)
    for i = 0 to !n_phases - 1 do
      if active.(i) > 0 then act_start.(i) <- act_start.(i) +. gap
    done;
    for i = 0 to !depth - 1 do
      frame_start.(i) <- frame_start.(i) +. gap
    done;
    last_mark := t;
    paused := false;
    on := true
  end

(* Reporting. *)

type phase_stat = {
  ps_name : string;
  ps_self_s : float;
  ps_total_s : float;
  ps_calls : int;
}

type report = {
  r_wall_s : float;
  r_phases : phase_stat list;
  r_counters : (string * int) list;
  r_unattributed_s : float;
  r_intervals_dropped : int;
}

let report () =
  let until =
    if !stopped then !stopped_at
    else if !paused then !pause_at
    else !clock ()
  in
  let wall = until -. !origin -. !paused_total in
  let phases = ref [] in
  let sum_self = ref 0.0 in
  for i = !n_phases - 1 downto 0 do
    if calls.(i) > 0 then begin
      (* A phase still open contributes its elapsed time so a report
         taken mid-run is internally consistent. *)
      let self =
        if !depth > 0 && stack.(!depth - 1) = i && not !stopped then
          self_s.(i) +. (until -. !last_mark)
        else self_s.(i)
      in
      let total =
        if active.(i) > 0 && not !stopped then
          total_s.(i) +. (until -. act_start.(i))
        else total_s.(i)
      in
      sum_self := !sum_self +. self;
      phases :=
        {
          ps_name = names.(i);
          ps_self_s = self;
          ps_total_s = total;
          ps_calls = calls.(i);
        }
        :: !phases
    end
  done;
  let counters = ref [] in
  for i = !n_counters - 1 downto 0 do
    if counts.(i) > 0 then
      counters := (counter_names.(i), counts.(i)) :: !counters
  done;
  {
    r_wall_s = wall;
    r_phases =
      List.sort (fun a b -> compare a.ps_name b.ps_name) !phases;
    r_counters = !counters;
    r_unattributed_s = Float.max 0.0 (wall -. !sum_self);
    r_intervals_dropped = !iv_dropped;
  }

let coverage r =
  if r.r_wall_s <= 0.0 then 0.0
  else Float.max 0.0 (1.0 -. (r.r_unattributed_s /. r.r_wall_s))
