(** The LISP data plane.

    One [t] simulates every ITR/ETR of an internet: hosts hand packets to
    {!send_from_host}; the data plane picks the egress border (via the
    control plane), looks the destination EID up in the border's per-flow
    table and map-cache, encapsulates, moves bytes across the topology
    (charging link counters), decapsulates at the remote border and
    delivers to the destination host's receiver callback.

    The control plane is injected as a record of closures
    ({!control_plane}); the five implementations (pull-drop, pull-queue,
    pull-detour, NERD push, PCE) live in the [mapsys] and [core]
    libraries and call back into {!install_mapping},
    {!install_flow_entry}, {!transmit_from_itr} and {!deliver_via}. *)

type t

type router = {
  border : Topology.Domain.border;
  router_domain : Topology.Domain.t;
  cache : Map_cache.t;  (** this border's LISP map-cache *)
  flows : Flow_table.t;  (** PCE-installed per-flow tuples *)
}

type miss_decision =
  | Miss_drop of Netsim.Telemetry.drop_cause
      (** drop the packet now, counted under the given typed cause *)
  | Miss_hold
      (** the control plane took custody of the packet and will either
          re-send it via {!transmit_from_itr} or abandon it *)

type control_plane = {
  cp_name : string;
  cp_choose_egress :
    src_domain:Topology.Domain.t -> Nettypes.Flow.t -> Topology.Domain.border;
      (** which border router a flow leaves its domain through *)
  cp_handle_miss : router -> Nettypes.Packet.t -> miss_decision;
      (** the border has no mapping for the packet's destination EID *)
  cp_note_etr_packet :
    router -> outer_src:Nettypes.Ipv4.addr option -> Nettypes.Packet.t -> unit;
      (** a packet arrived at this border from the core (after decap);
          [outer_src] is the tunnel source RLOC when it was tunneled —
          the hook LISP gleaning and the paper's ETR reverse-mapping
          multicast build on *)
}

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  control_plane:control_plane ->
  ?cache_capacity:int ->
  ?cache_policy:Map_cache.policy ->
  ?glean_cap:int ->
  ?flow_ttl:float ->
  ?trace:Netsim.Trace.t ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [obs] is the structured-event hub: when given (and enabled) the
    data plane emits [Encap]/[Decap], [Cache_hit]/[Cache_miss]/
    [Cache_evict] and [Packet_drop] events, flow-scoped where a packet
    is in hand.  A disabled hub costs one boolean test per site.
    [glean_cap] bounds the gleaned-entry population of every border's
    map-cache (see {!Map_cache.create}); admission rejections emit
    [Glean_rejected] events and the [glean-admission-rejected] typed
    drop cause (but are {e not} packet drops). *)

val engine : t -> Netsim.Engine.t
val internet : t -> Topology.Builder.t
val control_plane : t -> control_plane

val routers_of_domain : t -> Topology.Domain.t -> router array
(** One router per border, in border order. *)

val router_of_rloc : t -> Nettypes.Ipv4.addr -> router option
val router_for_border : t -> Topology.Domain.border -> router

val install_mapping :
  t -> router -> ?provenance:Map_cache.provenance -> Nettypes.Mapping.t -> unit
(** Put a mapping in one border's map-cache (stamped at current time).
    [provenance] defaults to {!Map_cache.Verified}. *)

val install_mapping_all :
  t ->
  Topology.Domain.t ->
  ?provenance:Map_cache.provenance ->
  Nettypes.Mapping.t ->
  unit
(** Same mapping into every border of the domain. *)

val install_flow_entry : t -> router -> Nettypes.Mapping.flow_entry -> unit

val install_flow_entry_all : t -> Topology.Domain.t -> Nettypes.Mapping.flow_entry -> unit
(** The paper's step 7b: push the per-flow tuple to {e all} ITRs of the
    domain. *)

val set_host_receiver :
  t -> Nettypes.Ipv4.addr -> (Nettypes.Packet.t -> unit) option -> unit
(** Register the callback invoked when a packet reaches the host owning
    the given EID. *)

val send_from_host : t -> Nettypes.Packet.t -> unit
(** Entry point for host-originated packets.  The packet's flow source
    EID must belong to a known domain. *)

val transmit_from_itr : t -> router -> Nettypes.Packet.t -> unit
(** Re-run the lookup-and-tunnel step for a packet the control plane
    held; a second miss drops it under cause ["post-resolution-miss"]. *)

val deliver_via : t -> router -> Nettypes.Packet.t -> extra_delay:float -> unit
(** Control-plane detour: the packet appears at the given (remote)
    border after [extra_delay] seconds and is forwarded to its host —
    models mapping systems that carry data packets over the control
    plane while the mapping resolves. *)

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable held : int;  (** packets handed to the control plane on a miss *)
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable intra_domain : int;  (** delivered without LISP *)
  mutable delivered_bytes : int;
}

val counters : t -> counters

val drop_causes : t -> (string * int) list
(** Drop counts keyed by cause label ({!Netsim.Telemetry.drop_label}),
    sorted by descending count. *)

val set_drop_observer : t -> (cause:string -> now:float -> unit) option -> unit
(** Callback invoked on every drop — failure experiments use it to build
    drop timelines. *)

val drop_held :
  t -> ?node:int -> Nettypes.Packet.t ->
  cause:Netsim.Telemetry.drop_cause -> unit
(** A control plane abandons a packet it had answered [Miss_hold] for
    (resolution timeout, unreachable destination): the packet is counted
    as a regular drop under [cause], with the usual event and observer
    side effects.  [node] is the router it was held at, for the
    telemetry plane's per-node drop attribution. *)

val cache_stats_totals : t -> Map_cache.stats
(** Aggregate map-cache statistics over all routers. *)

val cache_entries_total : t -> int
(** Live map-cache entries summed over all routers. *)

val gleaned_total : t -> int
(** Live gleaned-provenance cache entries summed over all routers — the
    cache-pollution count an EID-scan flood drives up. *)

val flow_entries_total : t -> int
(** Live per-flow table entries summed over all routers (evaluated at
    the engine's current time, so expired entries do not count). *)
