open Nettypes

(* Open-addressing table keyed by the (src EID, dst EID) int pair,
   stored structure-of-arrays: two key arrays, an entry array and an
   unboxed expiry array.  A lookup is one combined hash plus a linear
   probe over plain ints — no tuple key allocation, no polymorphic
   hashing.  Expired entries are reaped lazily: on lookup (as before)
   and now also by [length] and [iter], which previously counted
   expired slots and made occupancy gauges and warm-recovery resync
   over-report. *)

let empty_key = -1
let tomb_key = -2

type t = {
  ttl : float;
  mutable k1 : int array; (* src EID; [empty_key] / [tomb_key] sentinels *)
  mutable k2 : int array; (* dst EID *)
  mutable entries : Mapping.flow_entry array;
  mutable expires : float array;
  mutable mask : int; (* capacity - 1; capacity a power of two *)
  mutable occupied : int; (* live + expired-but-unreaped *)
  mutable tombs : int;
}

let dummy_entry =
  let a0 = Ipv4.addr_of_int 0 in
  { Mapping.src_eid = a0; dst_eid = a0; src_rloc = a0; dst_rloc = a0 }

let initial_cap = 64

let create ?(ttl = 300.0) () =
  if ttl <= 0.0 then invalid_arg "Flow_table.create: non-positive TTL";
  { ttl;
    k1 = Array.make initial_cap empty_key;
    k2 = Array.make initial_cap empty_key;
    entries = Array.make initial_cap dummy_entry;
    expires = Array.make initial_cap 0.0;
    mask = initial_cap - 1;
    occupied = 0;
    tombs = 0 }

let fib1 = 0x2545F4914F6CDD1D
let fib2 = 0x1E3779B97F4A7C15

let slot_of t a b = (a * fib1) lxor (b * fib2) land max_int land t.mask

(* Probe for the pair; slot index, or -1 when absent. *)
let find_slot t a b =
  let i = ref (slot_of t a b) in
  let result = ref (-3) in
  while !result = -3 do
    let k = Array.unsafe_get t.k1 !i in
    if k = a && Array.unsafe_get t.k2 !i = b then result := !i
    else if k = empty_key then result := -1
    else i := (!i + 1) land t.mask
  done;
  !result

let free_slot t s =
  t.k1.(s) <- tomb_key;
  t.k2.(s) <- tomb_key;
  t.entries.(s) <- dummy_entry;
  t.occupied <- t.occupied - 1;
  t.tombs <- t.tombs + 1

let rehash t cap =
  let ok1 = t.k1 and ok2 = t.k2 and oent = t.entries and oexp = t.expires in
  t.k1 <- Array.make cap empty_key;
  t.k2 <- Array.make cap empty_key;
  t.entries <- Array.make cap dummy_entry;
  t.expires <- Array.make cap 0.0;
  t.mask <- cap - 1;
  t.tombs <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ref (slot_of t k ok2.(i)) in
        while Array.unsafe_get t.k1 !j <> empty_key do
          j := (!j + 1) land t.mask
        done;
        t.k1.(!j) <- k;
        t.k2.(!j) <- ok2.(i);
        t.entries.(!j) <- oent.(i);
        t.expires.(!j) <- oexp.(i)
      end)
    ok1

let insert_slot t a b =
  if 2 * (t.occupied + t.tombs + 1) > t.mask + 1 then
    rehash t
      (if 2 * (t.occupied + 1) > t.mask + 1 then 2 * (t.mask + 1)
       else t.mask + 1);
  let i = ref (slot_of t a b) in
  let first_tomb = ref (-1) in
  let slot = ref (-3) in
  while !slot = -3 do
    let k = Array.unsafe_get t.k1 !i in
    if k = a && Array.unsafe_get t.k2 !i = b then slot := !i
    else if k = empty_key then
      slot := (if !first_tomb >= 0 then !first_tomb else !i)
    else begin
      if k = tomb_key && !first_tomb < 0 then first_tomb := !i;
      i := (!i + 1) land t.mask
    end
  done;
  let s = !slot in
  if not (t.k1.(s) = a && t.k2.(s) = b) then begin
    if t.k1.(s) = tomb_key then t.tombs <- t.tombs - 1;
    t.k1.(s) <- a;
    t.k2.(s) <- b;
    t.occupied <- t.occupied + 1
  end;
  s

let install t ~now entry =
  let a = Ipv4.addr_to_int entry.Mapping.src_eid in
  let b = Ipv4.addr_to_int entry.Mapping.dst_eid in
  let s = insert_slot t a b in
  t.entries.(s) <- entry;
  t.expires.(s) <- now +. t.ttl

let lookup t ~now ~src_eid ~dst_eid =
  let s = find_slot t (Ipv4.addr_to_int src_eid) (Ipv4.addr_to_int dst_eid) in
  if s < 0 then None
  else if Array.unsafe_get t.expires s > now then
    Some (Array.unsafe_get t.entries s)
  else begin
    free_slot t s;
    None
  end

let remove t ~src_eid ~dst_eid =
  let s = find_slot t (Ipv4.addr_to_int src_eid) (Ipv4.addr_to_int dst_eid) in
  if s >= 0 then free_slot t s

let update_src_rloc t ~now ~src_eid ~dst_eid ~rloc =
  let s = find_slot t (Ipv4.addr_to_int src_eid) (Ipv4.addr_to_int dst_eid) in
  if s >= 0 && Array.unsafe_get t.expires s > now then begin
    t.entries.(s) <- { t.entries.(s) with Mapping.src_rloc = rloc };
    true
  end
  else false

(* [length] and [iter] walk the table, reaping any expired slot they
   pass — the lazy counterpart of the reap [lookup] does on a hit. *)

let length t ~now =
  let n = ref 0 in
  for s = 0 to t.mask do
    if Array.unsafe_get t.k1 s >= 0 then
      if Array.unsafe_get t.expires s > now then incr n else free_slot t s
  done;
  !n

let iter t ~now ~f =
  for s = 0 to t.mask do
    if Array.unsafe_get t.k1 s >= 0 then
      if Array.unsafe_get t.expires s > now then
        f (Array.unsafe_get t.entries s)
      else free_slot t s
  done

let clear t =
  Array.fill t.k1 0 (t.mask + 1) empty_key;
  Array.fill t.k2 0 (t.mask + 1) empty_key;
  Array.fill t.entries 0 (t.mask + 1) dummy_entry;
  t.occupied <- 0;
  t.tombs <- 0
