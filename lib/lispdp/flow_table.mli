(** Per-flow mapping entries installed by the PCE control plane.

    Step 7b of the paper pushes the tuple [(E_S, E_D, RLOC_S, RLOC_D)] to
    the ITRs; this table stores those tuples keyed by the (source EID,
    destination EID) pair.  Unlike the map-cache, entries are exact-match
    on the EID pair, which is what allows two flows between the same
    domains to use different ingress/egress locators. *)

type t

val create : ?ttl:float -> unit -> t
(** [ttl] (default 300 s) bounds the lifetime of installed entries. *)

val install : t -> now:float -> Nettypes.Mapping.flow_entry -> unit
(** Insert or refresh the entry for the entry's EID pair. *)

val lookup :
  t -> now:float -> src_eid:Nettypes.Ipv4.addr -> dst_eid:Nettypes.Ipv4.addr ->
  Nettypes.Mapping.flow_entry option
(** Exact match on the EID pair; expired entries are absent. *)

val remove : t -> src_eid:Nettypes.Ipv4.addr -> dst_eid:Nettypes.Ipv4.addr -> unit

val length : t -> now:float -> int
(** Number of live entries at [now].  Expired slots encountered during
    the count are reaped, so occupancy gauges report only entries a
    lookup could still return. *)

val clear : t -> unit

val update_src_rloc :
  t -> now:float -> src_eid:Nettypes.Ipv4.addr -> dst_eid:Nettypes.Ipv4.addr ->
  rloc:Nettypes.Ipv4.addr -> bool
(** Rewrite the source locator of a live entry (the TE re-optimisation
    move); returns [false] if no live entry exists. *)

val iter : t -> now:float -> f:(Nettypes.Mapping.flow_entry -> unit) -> unit
(** Visit live entries; expired slots encountered are reaped. *)
