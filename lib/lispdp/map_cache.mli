(** The LISP map-cache of an ITR.

    Bounded cache of EID-prefix-to-RLOC mappings with per-entry expiry
    (the mapping's TTL, stamped at insertion) and least-recently-used
    eviction when full.  Time is passed explicitly so the cache has no
    dependency on the event engine and can be unit-tested directly. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 10_000 entries; must be positive. *)

val insert : t -> now:float -> Nettypes.Mapping.t -> unit
(** Cache a mapping; its expiry is [now + ttl].  Re-inserting a mapping
    for the same EID prefix refreshes it (counted neither as an
    insertion nor an invalidation).  May evict the LRU entry. *)

val lookup : t -> now:float -> Nettypes.Ipv4.addr -> Nettypes.Mapping.t option
(** Longest-prefix match among live entries; refreshes the entry's LRU
    position.  Expired entries behave as absent (and are reaped). *)

val contains : t -> now:float -> Nettypes.Ipv4.addr -> bool
(** Like {!lookup} without touching LRU order. *)

val remove : t -> Nettypes.Ipv4.prefix -> unit
(** Remove the exact entry if present; counted as an invalidation and
    reported to the evict hook. *)

val remove_covered : t -> Nettypes.Ipv4.prefix -> int
(** Remove the exact entry {e and} every more-specific entry inside the
    prefix (e.g. gleaned /32 host routes under a re-registered site
    prefix — the entries a Solicit-Map-Request invalidates).  Each
    victim counts as an invalidation and is reported to the evict hook.
    Returns the number of entries removed. *)

val length : t -> int
val capacity : t -> int

val clear : t -> unit
(** Empty the cache and reset all statistics to zero. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;  (** LRU evictions due to capacity *)
  mutable expirations : int;  (** entries dropped because their TTL lapsed *)
  mutable invalidations : int;
      (** entries removed explicitly ({!remove}, {!remove_covered} — the
          SMR invalidation path) *)
}

val stats : t -> stats
(** Live counters balance as
    [insertions = length + evictions + expirations + invalidations]
    (refreshes count on neither side). *)

val set_evict_hook : t -> (Nettypes.Mapping.t -> unit) option -> unit
(** Observer invoked with the victim mapping on every LRU eviction and
    every explicit removal (not on TTL expiry — see {!set_expire_hook}
    — or refresh); the observability layer uses it to emit
    [Cache_evict] events. *)

val set_expire_hook : t -> (Nettypes.Mapping.t -> unit) option -> unit
(** Observer invoked with the dead mapping each time a lookup reaps a
    TTL-expired entry.  Together with {!set_evict_hook} the two hooks
    see every entry death except silent refreshes:
    [hook invocations = evictions + invalidations + expirations]. *)

val hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 when no lookups have happened. *)
