(** The LISP map-cache of an ITR.

    Bounded cache of EID-prefix-to-RLOC mappings with per-entry expiry
    (the mapping's TTL, stamped at insertion) and a pluggable eviction
    policy applied when full.  Time is passed explicitly so the cache
    has no dependency on the event engine and can be unit-tested
    directly. *)

type t

type policy =
  | Lru  (** evict the least recently used entry *)
  | Lfu
      (** evict the least frequently hit entry (least recently used
          within the lowest hit-count class); O(1) frequency buckets *)
  | Ttl_hybrid
      (** evict the entry closest to (or past) its TTL expiry — the
          entry with the least remaining paid-for lifetime; lazy
          min-heap on expiry time *)

val policy_label : policy -> string
(** ["lru"], ["lfu"], ["ttl-hybrid"] — the spellings accepted by
    {!policy_of_string}, scenario files and the CLI. *)

val policy_of_string : string -> policy option
(** Case-insensitive; accepts ["lru"], ["lfu"], ["ttl-hybrid"] (also
    ["ttl"]). *)

(** Where an entry came from, in decreasing order of trust in the
    source: a nonce/signature-checked map-reply ({!Verified}), a
    PCE/NERD push over the registered channel ({!Pushed}), or the
    source field of a data packet anybody could have forged
    ({!Gleaned}).  Gleaned entries are the cache-poisoning vector an
    EID-scan flood exploits, so they are the population the admission
    cap bounds. *)
type provenance = Verified | Gleaned | Pushed

val provenance_label : provenance -> string
(** ["verified"], ["gleaned"], ["pushed"]. *)

val create : ?policy:policy -> ?capacity:int -> ?glean_cap:int -> unit -> t
(** [policy] defaults to {!Lru}; [capacity] defaults to 10_000 entries
    and must be positive.  [glean_cap], when given, bounds the number
    of live {!Gleaned} entries: a brand-new gleaned insert beyond the
    cap is refused (counted in [glean_rejections] and reported to the
    reject hook).  No cap by default. *)

val insert :
  t -> now:float -> ?provenance:provenance -> Nettypes.Mapping.t -> unit
(** Cache a mapping; its expiry is [now + ttl].  [provenance] defaults
    to {!Verified}.  Re-inserting a mapping for the same EID prefix
    refreshes it (counted neither as an insertion nor an invalidation;
    under {!Lfu} the refreshed entry keeps its hit-count class).
    Provenance only upgrades on refresh: a {!Gleaned} insert over an
    existing verified/pushed entry is ignored outright, while a
    verified/pushed insert over a gleaned entry takes the line over.
    May drop one entry chosen by the eviction policy when the cache is
    full: an unexpired victim counts as an eviction, a victim whose
    TTL already lapsed counts as an expiration (see {!stats}). *)

val provenance_of : t -> Nettypes.Ipv4.prefix -> provenance option
(** Provenance of the exact live entry for [prefix], if cached. *)

val gleaned : t -> int
(** Number of live {!Gleaned} entries (the cache-pollution count). *)

val glean_cap : t -> int option

val lookup : t -> now:float -> Nettypes.Ipv4.addr -> Nettypes.Mapping.t option
(** Longest-prefix match among live entries; a hit refreshes the
    entry's standing under the eviction policy (recency position for
    {!Lru}/{!Ttl_hybrid}, hit-count class for {!Lfu}).  Expired entries
    behave as absent (and are reaped). *)

val contains : t -> now:float -> Nettypes.Ipv4.addr -> bool
(** Like {!lookup} without touching the entry's policy standing. *)

val remove : t -> Nettypes.Ipv4.prefix -> unit
(** Remove the exact entry if present; counted as an invalidation and
    reported to the evict hook. *)

val remove_covered : t -> Nettypes.Ipv4.prefix -> int
(** Remove the exact entry {e and} every more-specific entry inside the
    prefix (e.g. gleaned /32 host routes under a re-registered site
    prefix — the entries a Solicit-Map-Request invalidates).  Walks
    only the covered trie subtree, so the cost is proportional to the
    victims, not the cache size.  Each victim counts as an
    invalidation and is reported to the evict hook.  Returns the
    number of entries removed. *)

val length : t -> int
val capacity : t -> int

val policy : t -> policy
(** The eviction policy the cache was created with. *)

val clear : t -> unit
(** Empty the cache and reset all statistics to zero. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
      (** policy evictions due to capacity — victims that were still
          live when dropped *)
  mutable expirations : int;
      (** entries dropped because their TTL lapsed, whether reaped by a
          lookup or picked as an already-expired capacity victim *)
  mutable invalidations : int;
      (** entries removed explicitly ({!remove}, {!remove_covered} — the
          SMR invalidation path) *)
  mutable glean_rejections : int;
      (** gleaned inserts refused by the admission cap (never part of
          the insertion balance: a rejected mapping was never cached) *)
}

val stats : t -> stats
(** Live counters balance as
    [insertions = length + evictions + expirations + invalidations]
    (refreshes count on neither side), under every eviction policy. *)

val set_evict_hook : t -> (Nettypes.Mapping.t -> unit) option -> unit
(** Observer invoked with the victim mapping on every capacity eviction
    of a still-live entry and every explicit removal (not on TTL expiry
    — see {!set_expire_hook} — or refresh); the observability layer
    uses it to emit [Cache_evict] events. *)

val set_expire_hook : t -> (Nettypes.Mapping.t -> unit) option -> unit
(** Observer invoked with the dead mapping each time a TTL-expired
    entry is dropped — reaped by a lookup or chosen as an
    already-expired capacity victim.  Together with {!set_evict_hook}
    the two hooks see every entry death except silent refreshes:
    [hook invocations = evictions + invalidations + expirations]. *)

val set_reject_hook : t -> (Nettypes.Mapping.t -> unit) option -> unit
(** Observer invoked with the refused mapping each time the glean
    admission cap rejects a new gleaned insert; the observability
    layer uses it to emit [Glean_rejected] events and the
    [glean-admission-rejected] drop cause. *)

val hit_ratio : t -> float
(** [hits / (hits + misses)]; 0 when no lookups have happened. *)
