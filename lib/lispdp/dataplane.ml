open Nettypes

type router = {
  border : Topology.Domain.border;
  router_domain : Topology.Domain.t;
  cache : Map_cache.t;
  flows : Flow_table.t;
}

type miss_decision = Miss_drop of Netsim.Telemetry.drop_cause | Miss_hold

type control_plane = {
  cp_name : string;
  cp_choose_egress :
    src_domain:Topology.Domain.t -> Flow.t -> Topology.Domain.border;
  cp_handle_miss : router -> Packet.t -> miss_decision;
  cp_note_etr_packet : router -> outer_src:Ipv4.addr option -> Packet.t -> unit;
}

type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable held : int;
  mutable encapsulated : int;
  mutable decapsulated : int;
  mutable intra_domain : int;
  mutable delivered_bytes : int;
}

type t = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  control_plane : control_plane;
  routers : router array array; (* indexed by domain id, then border index *)
  by_rloc : (int, router) Hashtbl.t; (* RLOC as raw int -> router *)
  receivers : (int, Packet.t -> unit) Hashtbl.t; (* EID -> host callback *)
  trace : Netsim.Trace.t option;
  obs : Obs.Hub.t option;
  counters : counters;
  drops : (string, int) Hashtbl.t;
  mutable drop_observer : (cause:string -> now:float -> unit) option;
}

let engine t = t.engine
let internet t = t.internet
let control_plane t = t.control_plane
let counters t = t.counters

let trace t ~actor fmt =
  match t.trace with
  | Some tr ->
      Netsim.Trace.recordf tr ~time:(Netsim.Engine.now t.engine) ~actor fmt
  | None -> Format.ikfprintf ignore Format.err_formatter fmt

(* Hot-path guard: call sites test this before building an event payload
   so a disabled observability layer allocates nothing. *)
let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~actor ?flow kind =
  match t.obs with
  | Some hub ->
      Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor ?flow kind
  | None -> ()

let create ~engine ~internet ~control_plane ?(cache_capacity = 10_000)
    ?(cache_policy = Map_cache.Lru) ?glean_cap ?(flow_ttl = 300.0) ?trace ?obs
    () =
  let by_rloc = Hashtbl.create 64 in
  let routers =
    Array.map
      (fun domain ->
        Array.map
          (fun border ->
            let r =
              { border; router_domain = domain;
                cache =
                  Map_cache.create ~policy:cache_policy
                    ~capacity:cache_capacity ?glean_cap ();
                flows = Flow_table.create ~ttl:flow_ttl () }
            in
            Hashtbl.replace by_rloc (Ipv4.addr_to_int border.Topology.Domain.rloc) r;
            r)
          domain.Topology.Domain.borders)
      internet.Topology.Builder.domains
  in
  let t =
    { engine; internet; control_plane; routers; by_rloc;
      receivers = Hashtbl.create 64; trace; obs;
      counters =
        { sent = 0; delivered = 0; dropped = 0; held = 0; encapsulated = 0;
          decapsulated = 0; intra_domain = 0; delivered_bytes = 0 };
      drops = Hashtbl.create 8; drop_observer = None }
  in
  Array.iter
    (Array.iter (fun r ->
         let actor = r.router_domain.Topology.Domain.name ^ "-itr" in
         (match obs with
         | None -> ()
         | Some _ ->
             let emit_death mapping =
               if obs_on t then
                 obs_emit t ~actor
                   (Obs.Event.Cache_evict
                      { prefix = mapping.Mapping.eid_prefix })
             in
             Map_cache.set_evict_hook r.cache (Some emit_death);
             Map_cache.set_expire_hook r.cache (Some emit_death));
         (* Admission rejections are control-plane refusals, not packet
            deaths: they feed the typed drop counters and the event
            stream but never [record_drop] (the packet itself was
            delivered normally — only its gleaned copy was refused). *)
         let node = r.border.Topology.Domain.router in
         let on_reject mapping =
           if Netsim.Telemetry.enabled () then
             Netsim.Telemetry.on_drop ~node
               Netsim.Telemetry.Glean_admission_rejected;
           if obs_on t then
             obs_emit t ~actor:(r.router_domain.Topology.Domain.name ^ "-etr")
               (Obs.Event.Glean_rejected
                  { eid = Ipv4.prefix_network mapping.Mapping.eid_prefix })
         in
         Map_cache.set_reject_hook r.cache (Some on_reject)))
    routers;
  t

let routers_of_domain t domain = t.routers.(domain.Topology.Domain.id)

let router_of_rloc t rloc = Hashtbl.find_opt t.by_rloc (Ipv4.addr_to_int rloc)

let router_for_border t border =
  match router_of_rloc t border.Topology.Domain.rloc with
  | Some r -> r
  | None -> invalid_arg "Dataplane.router_for_border: unknown border"

let install_mapping t router ?provenance mapping =
  Map_cache.insert router.cache ~now:(Netsim.Engine.now t.engine) ?provenance
    mapping

let install_mapping_all t domain ?provenance mapping =
  Array.iter
    (fun r -> install_mapping t r ?provenance mapping)
    (routers_of_domain t domain)

let install_flow_entry t router entry =
  Flow_table.install router.flows ~now:(Netsim.Engine.now t.engine) entry

let install_flow_entry_all t domain entry =
  Array.iter (fun r -> install_flow_entry t r entry) (routers_of_domain t domain)

let set_host_receiver t eid receiver =
  match receiver with
  | Some f -> Hashtbl.replace t.receivers (Ipv4.addr_to_int eid) f
  | None -> Hashtbl.remove t.receivers (Ipv4.addr_to_int eid)

(* The single choke point for packet deaths: every drop carries a typed
   cause ([Netsim.Telemetry.drop_cause]) and, when attributable, the
   node it died at.  The string label keeps the legacy bookkeeping
   (tables, traces, JSONL events, observers) byte-identical. *)
let record_drop t ?packet ?(node = -1) cause =
  t.counters.dropped <- t.counters.dropped + 1;
  let label = Netsim.Telemetry.drop_label cause in
  Hashtbl.replace t.drops label
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.drops label));
  if Netsim.Telemetry.enabled () then begin
    Netsim.Telemetry.touch ~now:(Netsim.Engine.now t.engine);
    Netsim.Telemetry.on_drop ~node cause
  end;
  if obs_on t then
    obs_emit t ~actor:"dp"
      ?flow:(Option.map (fun p -> Obs.Event.flow_id p.Packet.flow) packet)
      (Obs.Event.Packet_drop { cause = label });
  match t.drop_observer with
  | Some f -> f ~cause:label ~now:(Netsim.Engine.now t.engine)
  | None -> ()

let set_drop_observer t observer = t.drop_observer <- observer

(* A control plane gave up on packets it had answered [Miss_hold] for:
   they leave the simulation here so abandoned hold queues show up in
   drop accounting instead of leaking. *)
let drop_held t ?node packet ~cause = record_drop t ~packet ?node cause

let drop_causes t =
  Hashtbl.fold (fun cause n acc -> (cause, n) :: acc) t.drops []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let graph t = t.internet.Topology.Builder.graph

(* Packet movement and delivery run under the "dataplane" profiler
   phase; calls into the pluggable control plane (miss handling, ETR
   packet notes) are charged to "map_resolution" so cache-miss cost
   separates from pure forwarding in the self-profile. *)
let ph_dp = Netsim.Prof.phase "dataplane"
let ph_map = Netsim.Prof.phase "map_resolution"

(* Move [packet] from node [src] to node [dst]: charge the links on the
   shortest path and invoke [k] after the path latency.  If link
   failures have disconnected the endpoints the packet is dropped under
   cause ["no-route"]. *)
let wire t ~src ~dst packet k =
  if src = dst then k ()
  else begin
    let g = graph t in
    match Topology.Graph.latency_between g src dst with
    | latency ->
        if Netsim.Telemetry.enabled () then
          Netsim.Telemetry.touch ~now:(Netsim.Engine.now t.engine);
        Topology.Graph.account_path g ~src ~dst ~bytes:(Packet.size packet);
        ignore
          (Netsim.Engine.schedule t.engine ~delay:latency
             (Netsim.Prof.wrap ph_dp k))
    | exception Not_found ->
        record_drop t ~packet ~node:src Netsim.Telemetry.No_route
  end

let host_node_of_eid t eid =
  match Topology.Builder.domain_of_eid t.internet eid with
  | None -> None
  | Some domain -> (
      match Topology.Domain.host_of_eid domain eid with
      | Some i -> Some (domain, domain.Topology.Domain.hosts.(i))
      | None -> None)

(* Final hop: packet is at [router]'s node (or directly at the domain
   edge) and must reach the host owning its destination EID. *)
let deliver_to_host t ~from_node packet =
  let dst_eid = packet.Packet.flow.Flow.dst in
  match host_node_of_eid t dst_eid with
  | None ->
      record_drop t ~packet ~node:from_node Netsim.Telemetry.No_such_eid
  | Some (_domain, host_node) ->
      wire t ~src:from_node ~dst:host_node packet (fun () ->
          match Hashtbl.find_opt t.receivers (Ipv4.addr_to_int dst_eid) with
          | Some receiver ->
              t.counters.delivered <- t.counters.delivered + 1;
              t.counters.delivered_bytes <-
                t.counters.delivered_bytes + Packet.size packet;
              if Netsim.Telemetry.enabled () then
                Netsim.Telemetry.on_node_rx ~node:host_node
                  ~bytes:(Packet.size packet);
              receiver packet
          | None ->
              record_drop t ~packet ~node:host_node
                Netsim.Telemetry.No_receiver)

(* A packet arrived at a border router from the core side. *)
let etr_receive t router packet =
  let inner, outer_src =
    if Packet.is_encapsulated packet then begin
      t.counters.decapsulated <- t.counters.decapsulated + 1;
      let outer =
        match packet.Packet.encap with Some e -> e | None -> assert false
      in
      (Packet.decapsulate packet, Some outer.Packet.outer_src)
    end
    else (packet, None)
  in
  trace t ~actor:(router.router_domain.Topology.Domain.name ^ "-etr")
    "ETR %a received %a" Ipv4.pp_addr router.border.Topology.Domain.rloc
    Packet.pp inner;
  (match outer_src with
  | Some outer_src when obs_on t ->
      obs_emit t ~actor:(router.router_domain.Topology.Domain.name ^ "-etr")
        ~flow:(Obs.Event.flow_id inner.Packet.flow)
        (Obs.Event.Decap { outer_src })
  | Some _ | None -> ());
  Netsim.Prof.enter ph_map;
  t.control_plane.cp_note_etr_packet router ~outer_src inner;
  Netsim.Prof.leave ph_map;
  deliver_to_host t ~from_node:router.border.Topology.Domain.router inner

let deliver_via t router packet ~extra_delay =
  if extra_delay < 0.0 then invalid_arg "Dataplane.deliver_via: negative delay";
  ignore
    (Netsim.Engine.schedule t.engine ~delay:extra_delay
       (Netsim.Prof.wrap ph_dp (fun () -> etr_receive t router packet)))

(* Tunnel [packet] from ITR [router] using the given outer header. *)
let tunnel t router packet ~outer_src ~outer_dst =
  let router_node = router.border.Topology.Domain.router in
  match router_of_rloc t outer_dst with
  | None ->
      record_drop t ~packet ~node:router_node Netsim.Telemetry.No_such_rloc
  | Some remote
    when not (Topology.Link.is_up remote.border.Topology.Domain.uplink) ->
      (* The RLOC's access link is down: inter-domain routing has no
         path to this locator. *)
      record_drop t ~packet ~node:router_node
        Netsim.Telemetry.Rloc_unreachable
  | Some remote ->
      let encapsulated = Packet.encapsulate packet ~outer_src ~outer_dst in
      t.counters.encapsulated <- t.counters.encapsulated + 1;
      trace t ~actor:(router.router_domain.Topology.Domain.name ^ "-itr")
        "ITR %a tunnels %a" Ipv4.pp_addr router.border.Topology.Domain.rloc
        Packet.pp encapsulated;
      if obs_on t then
        obs_emit t ~actor:(router.router_domain.Topology.Domain.name ^ "-itr")
          ~flow:(Obs.Event.flow_id packet.Packet.flow)
          (Obs.Event.Encap { outer_src; outer_dst });
      wire t ~src:router.border.Topology.Domain.router
        ~dst:remote.border.Topology.Domain.router encapsulated (fun () ->
          etr_receive t remote encapsulated)

(* Mapping lookup at an ITR: per-flow entry first (PCE tuples, which may
   impose a foreign source RLOC), then the LISP map-cache. *)
let lookup_outer t router ~now flow =
  match
    Flow_table.lookup router.flows ~now ~src_eid:flow.Flow.src
      ~dst_eid:flow.Flow.dst
  with
  | Some entry -> Some (entry.Mapping.src_rloc, entry.Mapping.dst_rloc)
  | None -> (
      match Map_cache.lookup router.cache ~now flow.Flow.dst with
      | Some mapping ->
          if obs_on t then
            obs_emit t
              ~actor:(router.router_domain.Topology.Domain.name ^ "-itr")
              ~flow:(Obs.Event.flow_id flow)
              (Obs.Event.Cache_hit { eid = flow.Flow.dst });
          let r = Mapping.select_rloc mapping ~hash:(Flow.hash flow) in
          Some (router.border.Topology.Domain.rloc, r.Mapping.rloc_addr)
      | None ->
          if obs_on t then
            obs_emit t
              ~actor:(router.router_domain.Topology.Domain.name ^ "-itr")
              ~flow:(Obs.Event.flow_id flow)
              (Obs.Event.Cache_miss { eid = flow.Flow.dst });
          None)

let itr_process t router packet =
  let now = Netsim.Engine.now t.engine in
  match lookup_outer t router ~now packet.Packet.flow with
  | Some (outer_src, outer_dst) -> tunnel t router packet ~outer_src ~outer_dst
  | None -> (
      Netsim.Prof.enter ph_map;
      let decision = t.control_plane.cp_handle_miss router packet in
      Netsim.Prof.leave ph_map;
      match decision with
      | Miss_drop cause ->
          trace t ~actor:(router.router_domain.Topology.Domain.name ^ "-itr")
            "miss for %a: dropped (%s)" Ipv4.pp_addr packet.Packet.flow.Flow.dst
            (Netsim.Telemetry.drop_label cause);
          record_drop t ~packet
            ~node:router.border.Topology.Domain.router cause
      | Miss_hold -> t.counters.held <- t.counters.held + 1)

let transmit_from_itr t router packet =
  let now = Netsim.Engine.now t.engine in
  match lookup_outer t router ~now packet.Packet.flow with
  | Some (outer_src, outer_dst) -> tunnel t router packet ~outer_src ~outer_dst
  | None ->
      record_drop t ~packet ~node:router.border.Topology.Domain.router
        Netsim.Telemetry.Post_resolution_miss

let send_from_host t packet =
  let flow = packet.Packet.flow in
  match Topology.Builder.domain_of_eid t.internet flow.Flow.src with
  | None -> invalid_arg "Dataplane.send_from_host: unknown source EID"
  | Some src_domain ->
      t.counters.sent <- t.counters.sent + 1;
      let src_node =
        match Topology.Domain.host_of_eid src_domain flow.Flow.src with
        | Some i -> src_domain.Topology.Domain.hosts.(i)
        | None ->
            invalid_arg "Dataplane.send_from_host: source EID is not a host"
      in
      if Netsim.Telemetry.enabled () then begin
        Netsim.Telemetry.touch ~now:(Netsim.Engine.now t.engine);
        Netsim.Telemetry.on_node_tx ~node:src_node
          ~bytes:(Packet.size packet);
        Netsim.Telemetry.on_flow_packet
          ~eid:(Ipv4.addr_to_int flow.Flow.dst)
          ~flow:(Obs.Event.flow_id flow)
      end;
      if Topology.Domain.owns_eid src_domain flow.Flow.dst then begin
        (* Intra-domain traffic never touches LISP. *)
        t.counters.intra_domain <- t.counters.intra_domain + 1;
        deliver_to_host t ~from_node:src_node packet
      end
      else begin
        let border = t.control_plane.cp_choose_egress ~src_domain flow in
        let router = router_for_border t border in
        wire t ~src:src_node ~dst:border.Topology.Domain.router packet
          (fun () -> itr_process t router packet)
      end

let cache_stats_totals t =
  let acc =
    { Map_cache.hits = 0; misses = 0; insertions = 0; evictions = 0;
      expirations = 0; invalidations = 0; glean_rejections = 0 }
  in
  Array.iter
    (Array.iter (fun r ->
         let s = Map_cache.stats r.cache in
         acc.Map_cache.hits <- acc.Map_cache.hits + s.Map_cache.hits;
         acc.Map_cache.misses <- acc.Map_cache.misses + s.Map_cache.misses;
         acc.Map_cache.insertions <- acc.Map_cache.insertions + s.Map_cache.insertions;
         acc.Map_cache.evictions <- acc.Map_cache.evictions + s.Map_cache.evictions;
         acc.Map_cache.expirations <- acc.Map_cache.expirations + s.Map_cache.expirations;
         acc.Map_cache.invalidations <-
           acc.Map_cache.invalidations + s.Map_cache.invalidations;
         acc.Map_cache.glean_rejections <-
           acc.Map_cache.glean_rejections + s.Map_cache.glean_rejections))
    t.routers;
  acc

let flow_entries_total t =
  let now = Netsim.Engine.now t.engine in
  let total = ref 0 in
  Array.iter
    (Array.iter (fun r -> total := !total + Flow_table.length r.flows ~now))
    t.routers;
  !total

let cache_entries_total t =
  let total = ref 0 in
  Array.iter
    (Array.iter (fun r -> total := !total + Map_cache.length r.cache))
    t.routers;
  !total

let gleaned_total t =
  let total = ref 0 in
  Array.iter
    (Array.iter (fun r -> total := !total + Map_cache.gleaned r.cache))
    t.routers;
  !total
