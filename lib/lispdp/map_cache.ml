open Nettypes

(* Entries live in a prefix trie for longest-prefix lookup, in an
   intrusive doubly-linked list ordered by recency (head = most recent)
   for O(1) LRU maintenance, and in a flat int-keyed exact index (the
   prefix packed into a single int) so the insert/refresh/remove paths
   skip the trie walk that [Prefix_table.find_exact] costs. *)

type entry = {
  mapping : Mapping.t;
  expires_at : float;
  mutable prev : entry option;
  mutable next : entry option;
}

(* A /len prefix packs into [network lsl 6 lor len]: 32 + 6 bits, well
   inside an OCaml int, and distinct prefixes give distinct keys. *)
let prefix_key p =
  (Ipv4.addr_to_int (Ipv4.prefix_network p) lsl 6) lor Ipv4.prefix_length p

let dummy_entry =
  { mapping =
      Mapping.create
        ~eid_prefix:(Ipv4.prefix (Ipv4.addr_of_int 0) 0)
        ~rlocs:[ Mapping.rloc (Ipv4.addr_of_int 0) ]
        ~ttl:1.0;
    expires_at = 0.0;
    prev = None;
    next = None }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable invalidations : int;
}

type t = {
  capacity : int;
  table : entry Prefix_table.t;
  index : entry Int_table.t; (* packed prefix -> entry, exact match *)
  mutable head : entry option; (* most recently used *)
  mutable tail : entry option; (* least recently used *)
  stats : stats;
  mutable evict_hook : (Mapping.t -> unit) option;
  mutable expire_hook : (Mapping.t -> unit) option;
}

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Map_cache.create: capacity must be positive";
  { capacity; table = Prefix_table.create ();
    index = Int_table.create ~dummy:dummy_entry ();
    head = None; tail = None;
    stats =
      { hits = 0; misses = 0; insertions = 0; evictions = 0; expirations = 0;
        invalidations = 0 };
    evict_hook = None; expire_hook = None }

let set_evict_hook t hook = t.evict_hook <- hook
let set_expire_hook t hook = t.expire_hook <- hook

let stats t = t.stats
let length t = Prefix_table.length t.table
let capacity t = t.capacity

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop_entry t e =
  unlink t e;
  Prefix_table.remove t.table e.mapping.Mapping.eid_prefix;
  Int_table.remove t.index (prefix_key e.mapping.Mapping.eid_prefix)

(* Explicit removal: count as an invalidation and tell the hook, so the
   SMR invalidation path is visible to the observability layer. *)
let invalidate t e =
  drop_entry t e;
  t.stats.invalidations <- t.stats.invalidations + 1;
  match t.evict_hook with Some hook -> hook e.mapping | None -> ()

let remove t prefix =
  match Int_table.find t.index (prefix_key prefix) with
  | Some e -> invalidate t e
  | None -> ()

let remove_covered t prefix =
  let victims =
    Prefix_table.fold t.table ~init:[] ~f:(fun p e acc ->
        if Ipv4.prefix_subsumes prefix p then e :: acc else acc)
  in
  List.iter (invalidate t) victims;
  List.length victims

let clear t =
  Prefix_table.clear t.table;
  Int_table.clear t.index;
  t.head <- None;
  t.tail <- None;
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.insertions <- 0;
  t.stats.evictions <- 0;
  t.stats.expirations <- 0;
  t.stats.invalidations <- 0

let evict_lru t =
  match t.tail with
  | Some e ->
      drop_entry t e;
      t.stats.evictions <- t.stats.evictions + 1;
      (match t.evict_hook with
      | Some hook -> hook e.mapping
      | None -> ())
  | None -> ()

let insert t ~now mapping =
  (* A refresh replaces the old entry silently: it is neither an
     invalidation (nothing was lost) nor a new insertion, which keeps
     the balance insertions = live + evictions + expirations +
     invalidations exact. *)
  let key = prefix_key mapping.Mapping.eid_prefix in
  let refreshed =
    match Int_table.find t.index key with
    | Some e ->
        drop_entry t e;
        true
    | None -> false
  in
  if length t >= t.capacity then evict_lru t;
  let e =
    { mapping; expires_at = now +. mapping.Mapping.ttl; prev = None; next = None }
  in
  Prefix_table.add t.table mapping.Mapping.eid_prefix e;
  Int_table.add t.index key e;
  push_front t e;
  if not refreshed then t.stats.insertions <- t.stats.insertions + 1

(* Longest-prefix match skipping (and reaping) expired entries. *)
let rec live_lookup t ~now addr =
  match Prefix_table.lookup t.table addr with
  | None -> None
  | Some (_, e) ->
      if e.expires_at > now then Some e
      else begin
        drop_entry t e;
        t.stats.expirations <- t.stats.expirations + 1;
        (match t.expire_hook with
        | Some hook -> hook e.mapping
        | None -> ());
        live_lookup t ~now addr
      end

let lookup t ~now addr =
  match live_lookup t ~now addr with
  | Some e ->
      t.stats.hits <- t.stats.hits + 1;
      unlink t e;
      push_front t e;
      Some e.mapping
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None

let contains t ~now addr = live_lookup t ~now addr <> None

let hit_ratio t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total
