open Nettypes

(* Entries live in a prefix trie for longest-prefix lookup and in a flat
   int-keyed exact index (the prefix packed into a single int) so the
   insert/refresh/remove paths skip the trie walk that
   [Prefix_table.find_exact] costs.  On top of those two shared
   structures each eviction policy keeps its own victim-selection state:

   - LRU: an intrusive doubly-linked recency list (head = most recent);
     the victim is the tail.
   - LFU: a doubly-linked list of frequency buckets in ascending
     hit-count order, each bucket an intrusive recency list of the
     entries in that class; the victim is the least-recent entry of the
     lowest bucket (classic LFU with LRU tie-break).  All operations are
     O(1) because a hit moves an entry to the adjacent class.
   - TTL-hybrid: a lazy-deletion binary min-heap on [expires_at]; the
     victim is the entry closest to (or past) expiry.  Entries removed
     for other reasons are only marked dead and skipped when popped;
     the heap compacts when dead nodes dominate. *)

type policy = Lru | Lfu | Ttl_hybrid

let policy_label = function
  | Lru -> "lru"
  | Lfu -> "lfu"
  | Ttl_hybrid -> "ttl-hybrid"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Some Lru
  | "lfu" -> Some Lfu
  | "ttl-hybrid" | "ttl_hybrid" | "ttl" -> Some Ttl_hybrid
  | _ -> None

(* How the entry got here.  Verified and pushed mappings came over an
   authenticated exchange (nonce-checked map-reply, PCE/NERD push);
   gleaned ones were copied off a data packet anybody could have
   forged, so they are the cache-pollution vector an EID-scan flood
   exploits — the admission cap bounds how much of the cache they can
   take. *)
type provenance = Verified | Gleaned | Pushed

let provenance_label = function
  | Verified -> "verified"
  | Gleaned -> "gleaned"
  | Pushed -> "pushed"

type entry = {
  mapping : Mapping.t;
  expires_at : float;
  mutable provenance : provenance;
  (* Recency links: the global list under LRU / TTL-hybrid, the
     within-bucket list under LFU. *)
  mutable prev : entry option;
  mutable next : entry option;
  (* LFU state: hit-count class and the bucket currently holding the
     entry. *)
  mutable freq : int;
  mutable bucket : bucket option;
  (* TTL-hybrid state: lazy-deletion marker for the expiry heap. *)
  mutable dead : bool;
}

and bucket = {
  b_freq : int;
  mutable b_head : entry option; (* most recent in this class *)
  mutable b_tail : entry option; (* least recent in this class *)
  mutable b_prev : bucket option; (* next lower frequency class *)
  mutable b_next : bucket option; (* next higher frequency class *)
}

(* A /len prefix packs into [network lsl 6 lor len]: 32 + 6 bits, well
   inside an OCaml int, and distinct prefixes give distinct keys. *)
let prefix_key p =
  (Ipv4.addr_to_int (Ipv4.prefix_network p) lsl 6) lor Ipv4.prefix_length p

let dummy_entry =
  { mapping =
      Mapping.create
        ~eid_prefix:(Ipv4.prefix (Ipv4.addr_of_int 0) 0)
        ~rlocs:[ Mapping.rloc (Ipv4.addr_of_int 0) ]
        ~ttl:1.0;
    expires_at = 0.0;
    provenance = Verified;
    prev = None;
    next = None;
    freq = 0;
    bucket = None;
    dead = true }

type heap = { mutable h_arr : entry array; mutable h_len : int }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable invalidations : int;
  mutable glean_rejections : int;
}

type t = {
  capacity : int;
  policy : policy;
  glean_cap : int option;
  mutable gleaned_live : int;
  table : entry Prefix_table.t;
  index : entry Int_table.t; (* packed prefix -> entry, exact match *)
  mutable head : entry option; (* most recently used (LRU / TTL-hybrid) *)
  mutable tail : entry option; (* least recently used (LRU / TTL-hybrid) *)
  mutable lfu_min : bucket option; (* lowest frequency class (LFU) *)
  heap : heap; (* expiry min-heap (TTL-hybrid) *)
  stats : stats;
  mutable evict_hook : (Mapping.t -> unit) option;
  mutable expire_hook : (Mapping.t -> unit) option;
  mutable reject_hook : (Mapping.t -> unit) option;
}

let create ?(policy = Lru) ?(capacity = 10_000) ?glean_cap () =
  if capacity <= 0 then invalid_arg "Map_cache.create: capacity must be positive";
  (match glean_cap with
  | Some c when c < 0 -> invalid_arg "Map_cache.create: negative glean_cap"
  | Some _ | None -> ());
  { capacity; policy; glean_cap; gleaned_live = 0;
    table = Prefix_table.create ();
    index = Int_table.create ~dummy:dummy_entry ();
    head = None; tail = None; lfu_min = None;
    heap = { h_arr = [||]; h_len = 0 };
    stats =
      { hits = 0; misses = 0; insertions = 0; evictions = 0; expirations = 0;
        invalidations = 0; glean_rejections = 0 };
    evict_hook = None; expire_hook = None; reject_hook = None }

let set_evict_hook t hook = t.evict_hook <- hook
let set_expire_hook t hook = t.expire_hook <- hook
let set_reject_hook t hook = t.reject_hook <- hook

let stats t = t.stats
let length t = Prefix_table.length t.table
let capacity t = t.capacity
let policy t = t.policy
let glean_cap t = t.glean_cap
let gleaned t = t.gleaned_live

(* ---- global recency list (LRU / TTL-hybrid) ---- *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

(* ---- LFU frequency buckets ---- *)

let bucket_unlink t e =
  match e.bucket with
  | None -> ()
  | Some b ->
      (match e.prev with Some p -> p.next <- e.next | None -> b.b_head <- e.next);
      (match e.next with Some n -> n.prev <- e.prev | None -> b.b_tail <- e.prev);
      e.prev <- None;
      e.next <- None;
      e.bucket <- None;
      if b.b_head = None then begin
        (match b.b_prev with
        | Some p -> p.b_next <- b.b_next
        | None -> t.lfu_min <- b.b_next);
        match b.b_next with Some n -> n.b_prev <- b.b_prev | None -> ()
      end

let bucket_push_entry b e =
  e.prev <- None;
  e.next <- b.b_head;
  (match b.b_head with Some h -> h.prev <- Some e | None -> b.b_tail <- Some e);
  b.b_head <- Some e;
  e.bucket <- Some b

(* The bucket for class [f] sitting right after [anchor] (or at the list
   head when [anchor] is [None]), created if missing.  Callers must pass
   an anchor with a strictly lower class whose successor has class
   [>= f], so the ascending order is preserved. *)
let bucket_after t anchor f =
  let next = match anchor with None -> t.lfu_min | Some b -> b.b_next in
  match next with
  | Some nb when nb.b_freq = f -> nb
  | _ ->
      let nb =
        { b_freq = f; b_head = None; b_tail = None; b_prev = anchor;
          b_next = next }
      in
      (match next with Some n -> n.b_prev <- Some nb | None -> ());
      (match anchor with
      | Some b -> b.b_next <- Some nb
      | None -> t.lfu_min <- Some nb);
      nb

let lfu_insert t e =
  let rec find prev next =
    match next with
    | Some b when b.b_freq < e.freq -> find (Some b) b.b_next
    | _ -> prev
  in
  let anchor = find None t.lfu_min in
  bucket_push_entry (bucket_after t anchor e.freq) e

let lfu_promote t e =
  match e.bucket with
  | None -> ()
  | Some b ->
      (* If [e] is alone in its bucket, the bucket dies with the unlink
         and the next class anchors on its predecessor instead. *)
      let anchor =
        match (e.prev, e.next) with None, None -> b.b_prev | _ -> Some b
      in
      bucket_unlink t e;
      e.freq <- e.freq + 1;
      bucket_push_entry (bucket_after t anchor e.freq) e

(* ---- TTL-hybrid expiry heap ---- *)

let heap_swap h i j =
  let a = h.h_arr in
  let e = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- e

let heap_sift_down h i0 =
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < h.h_len && h.h_arr.(l).expires_at < h.h_arr.(!s).expires_at then
      s := l;
    if r < h.h_len && h.h_arr.(r).expires_at < h.h_arr.(!s).expires_at then
      s := r;
    if !s = !i then moving := false
    else begin
      heap_swap h !i !s;
      i := !s
    end
  done

let heap_push h e =
  let cap = Array.length h.h_arr in
  if h.h_len = cap then begin
    let arr = Array.make (Stdlib.max 8 (2 * cap)) dummy_entry in
    Array.blit h.h_arr 0 arr 0 h.h_len;
    h.h_arr <- arr
  end;
  h.h_arr.(h.h_len) <- e;
  let i = ref h.h_len in
  h.h_len <- h.h_len + 1;
  while
    !i > 0 && h.h_arr.((!i - 1) / 2).expires_at > h.h_arr.(!i).expires_at
  do
    heap_swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let heap_pop h =
  let top = h.h_arr.(0) in
  h.h_len <- h.h_len - 1;
  h.h_arr.(0) <- h.h_arr.(h.h_len);
  h.h_arr.(h.h_len) <- dummy_entry;
  heap_sift_down h 0;
  top

let rec heap_pop_live h =
  if h.h_len = 0 then None
  else
    let e = heap_pop h in
    if e.dead then heap_pop_live h else Some e

(* Dead nodes accumulate when entries die without being popped (TTL
   reaps, invalidations, refreshes); rebuild once they dominate so the
   heap stays proportional to the live entry count. *)
let heap_compact h ~live =
  if h.h_len > (2 * live) + 8 then begin
    let n = ref 0 in
    for i = 0 to h.h_len - 1 do
      let e = h.h_arr.(i) in
      if not e.dead then begin
        h.h_arr.(!n) <- e;
        incr n
      end
    done;
    for i = !n to h.h_len - 1 do
      h.h_arr.(i) <- dummy_entry
    done;
    h.h_len <- !n;
    for i = (h.h_len / 2) - 1 downto 0 do
      heap_sift_down h i
    done
  end

(* ---- shared entry lifecycle ---- *)

let drop_entry t e =
  (match t.policy with
  | Lfu -> bucket_unlink t e
  | Lru | Ttl_hybrid -> unlink t e);
  if e.provenance = Gleaned then t.gleaned_live <- t.gleaned_live - 1;
  e.dead <- true;
  Prefix_table.remove t.table e.mapping.Mapping.eid_prefix;
  Int_table.remove t.index (prefix_key e.mapping.Mapping.eid_prefix);
  if t.policy = Ttl_hybrid then heap_compact t.heap ~live:(length t)

(* Explicit removal: count as an invalidation and tell the hook, so the
   SMR invalidation path is visible to the observability layer. *)
let invalidate t e =
  drop_entry t e;
  t.stats.invalidations <- t.stats.invalidations + 1;
  match t.evict_hook with Some hook -> hook e.mapping | None -> ()

let remove t prefix =
  match Int_table.find t.index (prefix_key prefix) with
  | Some e -> invalidate t e
  | None -> ()

let remove_covered t prefix =
  (* Only the covered subtree is walked: under invalidation churn with
     millions of entries a whole-table fold per call is quadratic. *)
  let victims =
    Prefix_table.fold_covered t.table prefix ~init:[] ~f:(fun _ e acc ->
        e :: acc)
  in
  List.iter (invalidate t) victims;
  List.length victims

let clear t =
  Prefix_table.clear t.table;
  Int_table.clear t.index;
  t.head <- None;
  t.tail <- None;
  t.lfu_min <- None;
  Array.fill t.heap.h_arr 0 (Array.length t.heap.h_arr) dummy_entry;
  t.heap.h_len <- 0;
  t.gleaned_live <- 0;
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.insertions <- 0;
  t.stats.evictions <- 0;
  t.stats.expirations <- 0;
  t.stats.invalidations <- 0;
  t.stats.glean_rejections <- 0

(* Victim choice when the cache is full, per policy.  A TTL-hybrid
   victim has already been popped off the heap; [drop_entry]'s dead
   marking is then a no-op as far as the heap is concerned. *)
let victim t =
  match t.policy with
  | Lru -> t.tail
  | Lfu -> ( match t.lfu_min with Some b -> b.b_tail | None -> None)
  | Ttl_hybrid -> heap_pop_live t.heap

(* Capacity pressure drops one entry; the books must say why it died.
   A victim whose TTL already lapsed was going to be reaped by the next
   lookup anyway — counting it as an eviction (and telling the evict
   hook) would overstate capacity pressure and skew miss-curve stats,
   so attribution checks [expires_at] against [now] first. *)
let evict_one t ~now =
  match victim t with
  | None -> ()
  | Some e ->
      drop_entry t e;
      if e.expires_at <= now then begin
        t.stats.expirations <- t.stats.expirations + 1;
        match t.expire_hook with Some hook -> hook e.mapping | None -> ()
      end
      else begin
        t.stats.evictions <- t.stats.evictions + 1;
        match t.evict_hook with Some hook -> hook e.mapping | None -> ()
      end

let insert t ~now ?(provenance = Verified) mapping =
  (* A refresh replaces the old entry silently: it is neither an
     invalidation (nothing was lost) nor a new insertion, which keeps
     the balance insertions = live + evictions + expirations +
     invalidations exact.  Under LFU the refreshed entry keeps its
     hit-count class — it is the same logical cache line.

     Provenance on refresh only ever upgrades: a gleaned copy of a
     prefix that already has a verified/pushed entry is ignored (a
     forged data packet must not be able to re-stamp a verified line),
     while a verified reply refreshing a gleaned entry takes over. *)
  let key = prefix_key mapping.Mapping.eid_prefix in
  let existing = Int_table.find t.index key in
  match (existing, provenance) with
  | Some e, Gleaned when e.provenance <> Gleaned -> ()
  | _ ->
      (* Admission policy: a brand-new gleaned entry is refused once the
         gleaned population hits the cap (a refresh of an existing
         gleaned line never changes the population). *)
      let new_glean = existing = None && provenance = Gleaned in
      if
        new_glean
        && match t.glean_cap with Some c -> t.gleaned_live >= c | None -> false
      then begin
        t.stats.glean_rejections <- t.stats.glean_rejections + 1;
        match t.reject_hook with Some hook -> hook mapping | None -> ()
      end
      else begin
        let refreshed_freq =
          match existing with
          | Some e ->
              drop_entry t e;
              Some e.freq
          | None -> None
        in
        if length t >= t.capacity then evict_one t ~now;
        let e =
          { mapping; expires_at = now +. mapping.Mapping.ttl; provenance;
            prev = None; next = None;
            freq = (match refreshed_freq with Some f -> f | None -> 1);
            bucket = None; dead = false }
        in
        if provenance = Gleaned then t.gleaned_live <- t.gleaned_live + 1;
        Prefix_table.add t.table mapping.Mapping.eid_prefix e;
        Int_table.add t.index key e;
        (match t.policy with
        | Lru -> push_front t e
        | Lfu -> lfu_insert t e
        | Ttl_hybrid ->
            push_front t e;
            heap_push t.heap e);
        if refreshed_freq = None then
          t.stats.insertions <- t.stats.insertions + 1
      end

(* Longest-prefix match skipping (and reaping) expired entries. *)
let rec live_lookup t ~now addr =
  match Prefix_table.lookup t.table addr with
  | None -> None
  | Some (_, e) ->
      if e.expires_at > now then Some e
      else begin
        drop_entry t e;
        t.stats.expirations <- t.stats.expirations + 1;
        (match t.expire_hook with
        | Some hook -> hook e.mapping
        | None -> ());
        live_lookup t ~now addr
      end

let lookup t ~now addr =
  match live_lookup t ~now addr with
  | Some e ->
      t.stats.hits <- t.stats.hits + 1;
      (match t.policy with
      | Lru | Ttl_hybrid ->
          unlink t e;
          push_front t e
      | Lfu -> lfu_promote t e);
      Some e.mapping
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None

let contains t ~now addr = live_lookup t ~now addr <> None

let provenance_of t prefix =
  match Int_table.find t.index (prefix_key prefix) with
  | Some e when not e.dead -> Some e.provenance
  | Some _ | None -> None

let hit_ratio t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total
