(** Arrival processes.

    Schedule flow-start events on the engine.  Generators draw only from
    the provided RNG, so the schedule is reproducible regardless of what
    the started flows themselves draw.  [poisson] materialises the whole
    window up front (and can report its count); [poisson_stream] keeps
    the pending-event footprint O(1) for million-flow windows. *)

val poisson :
  engine:Netsim.Engine.t ->
  rng:Netsim.Rng.t ->
  rate:float ->
  duration:float ->
  f:(int -> unit) ->
  int
(** Poisson arrivals at [rate] per second over [duration] seconds
    starting now; [f] receives the arrival index.  Draws and schedules
    every arrival up front; returns the number of arrivals scheduled. *)

val poisson_stream :
  engine:Netsim.Engine.t ->
  rng:Netsim.Rng.t ->
  rate:float ->
  duration:float ->
  f:(int -> unit) ->
  unit
(** Same arrival process as {!poisson} — identical times for an
    identical RNG stream — but each arrival schedules the next, so at
    most one arrival event is pending at any instant and no per-arrival
    closure or gap list is allocated.  The generator count is unknown
    until the window closes; count inside [f] if needed. *)

val uniform_spread :
  engine:Netsim.Engine.t -> count:int -> duration:float -> f:(int -> unit) -> int
(** [count] arrivals evenly spaced over [duration] (deterministic). *)

val burst : engine:Netsim.Engine.t -> count:int -> f:(int -> unit) -> int
(** All arrivals at the current instant (back-to-back events). *)
