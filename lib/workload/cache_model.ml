(* The Coras analytical model for LISP map-cache miss rate (Coras,
   Cabellos-Aparicio, Domingo-Pascual: "An Analytical Model for
   Loc/ID Mappings Caches"; also "On the Scalability of LISP Mappings
   Caches").  Under the independent reference model with popularity
   masses p_i, an LRU cache of capacity C behaves like a sliding
   working-set window of one "characteristic time" T_C — Che's
   approximation: an entry is resident iff it was referenced within the
   last T_C references, so

     occupancy(T)  = sum_i (1 - e^{-p_i T})      (expected distinct
                                                  prefixes in a window)
     T_C           : occupancy(T_C) = C          (window that fills C)
     hit rate      = sum_i p_i (1 - e^{-p_i T_C})

   occupancy is strictly increasing and concave with occupancy(T) <= T,
   so T_C >= C exists and is unique for C < n; Newton iteration started
   at T = C converges monotonically from below. *)

type prediction = {
  characteristic_time : float;
  hit_rate : float;
  miss_rate : float;
}

let zipf_masses ~n ~alpha =
  if n <= 0 then invalid_arg "Cache_model.zipf_masses: n must be positive";
  if alpha < 0.0 then invalid_arg "Cache_model.zipf_masses: alpha must be >= 0";
  (* Same construction as Rng.Zipf.create, so predictions line up with
     the sampler's exact masses. *)
  let masses = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** alpha)) in
  let total = Array.fold_left ( +. ) 0.0 masses in
  Array.map (fun m -> m /. total) masses

(* occupancy(t) and its derivative sum_i p_i e^{-p_i t}, in one pass. *)
let occupancy_and_slope masses t =
  let occ = ref 0.0 and slope = ref 0.0 in
  Array.iter
    (fun p ->
      let e = exp (-.p *. t) in
      occ := !occ +. (1.0 -. e);
      slope := !slope +. (p *. e))
    masses;
  (!occ, !slope)

let hit_rate_at masses t =
  let h = ref 0.0 in
  Array.iter (fun p -> h := !h +. (p *. (1.0 -. exp (-.p *. t)))) masses;
  !h

let predict ~masses ~capacity =
  let n = Array.length masses in
  if n = 0 then invalid_arg "Cache_model.predict: empty masses";
  if capacity <= 0 then
    invalid_arg "Cache_model.predict: capacity must be positive";
  if capacity >= n then
    (* Everything fits: in steady state (cold misses excluded) every
       reference hits. *)
    { characteristic_time = infinity; hit_rate = 1.0; miss_rate = 0.0 }
  else begin
    let c = float_of_int capacity in
    let t = ref c in
    let converged = ref false in
    let steps = ref 0 in
    while (not !converged) && !steps < 200 do
      incr steps;
      let occ, slope = occupancy_and_slope masses !t in
      let gap = c -. occ in
      if gap <= 1e-9 *. c || slope <= 0.0 then converged := true
      else t := !t +. (gap /. slope)
    done;
    let hit = hit_rate_at masses !t in
    { characteristic_time = !t; hit_rate = hit; miss_rate = 1.0 -. hit }
  end
