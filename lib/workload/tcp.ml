open Nettypes

type conn = {
  flow : Flow.t;
  started_at : float;
  mutable established_at : float option;
  mutable failed : bool;
  mutable syn_transmissions : int;
  mutable first_syn_arrival : float option;
  mutable data_sent : int;
  mutable data_delivered : int;
  mutable completed_at : float option;
}

type conn_state = {
  conn : conn;
  data_packets : int;
  data_bytes : int;
  on_established : (conn -> unit) option;
  on_complete : (conn -> unit) option;
  mutable rto_timer : Netsim.Engine.handle option;
}

type t = {
  engine : Netsim.Engine.t;
  dataplane : Lispdp.Dataplane.t;
  initial_rto : float;
  max_syn_retries : int;
  data_gap : float;
  obs : Obs.Hub.t option;
  (* Keyed by the initiator-side flow. *)
  states : (Flow.t, conn_state) Hashtbl.t;
  mutable all : conn list; (* newest first *)
}

(* Handshake events feed the span layer.  Call sites guard with
   [obs_on] so a disabled run allocates nothing. *)
let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~eid ~flow kind =
  match t.obs with
  | None -> ()
  | Some hub ->
      let actor =
        match
          Topology.Builder.domain_of_eid
            (Lispdp.Dataplane.internet t.dataplane) eid
        with
        | Some d -> d.Topology.Domain.name ^ "-host"
        | None -> "host"
      in
      Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor
        ~flow:(Obs.Event.flow_id flow) kind

let handshake_time conn =
  Option.map (fun e -> e -. conn.started_at) conn.established_at

let connections t = List.rev t.all

(* Demultiplex a packet delivered to a host.  A packet whose flow is a
   key in [states] travels responder -> initiator (the responder swaps
   the flow when replying); the initiator-to-responder direction
   arrives with the reversed key. *)
let rec on_receive t packet =
  let flow = packet.Packet.flow in
  let now = Netsim.Engine.now t.engine in
  match packet.Packet.segment with
  | Packet.Syn -> (
      (* Arrived at the responder; the packet carries the initiator's
         flow, which is exactly the state key. *)
      match Hashtbl.find_opt t.states flow with
      | None -> () (* stray SYN; no listener state *)
      | Some st ->
          if st.conn.first_syn_arrival = None then begin
            st.conn.first_syn_arrival <- Some now;
            if obs_on t then
              obs_emit t ~eid:flow.Flow.dst ~flow Obs.Event.Syn_received
          end;
          (* Reply SYN/ACK on the reversed flow. *)
          let reply =
            Packet.make ~flow:(Flow.reverse flow) ~segment:Packet.Syn_ack
              ~sent_at:now
          in
          Lispdp.Dataplane.send_from_host t.dataplane reply)
  | Packet.Ack -> () (* handshake-completing ACK at the responder *)
  | Packet.Syn_ack -> (
      (* Arrived back at the initiator on the reversed flow. *)
      match Hashtbl.find_opt t.states (Flow.reverse flow) with
      | None -> ()
      | Some st ->
          if st.conn.established_at = None && not st.conn.failed then begin
            st.conn.established_at <- Some now;
            if obs_on t then
              obs_emit t ~eid:st.conn.flow.Flow.src ~flow:st.conn.flow
                Obs.Event.Conn_established;
            (match st.rto_timer with
            | Some h ->
                Netsim.Engine.cancel t.engine h;
                st.rto_timer <- None
            | None -> ());
            let ack = Packet.make ~flow ~segment:Packet.Ack ~sent_at:now in
            Lispdp.Dataplane.send_from_host t.dataplane ack;
            (match st.on_established with Some f -> f st.conn | None -> ());
            send_data t st 0
          end)
  | Packet.Data _ -> (
      match Hashtbl.find_opt t.states flow with
      | None -> ()
      | Some st ->
          st.conn.data_delivered <- st.conn.data_delivered + 1;
          if
            st.conn.data_delivered = st.data_packets
            && st.conn.completed_at = None
          then begin
            st.conn.completed_at <- Some now;
            match st.on_complete with Some f -> f st.conn | None -> ()
          end)
  | Packet.Fin -> ()

and send_data t st i =
  if i < st.data_packets then begin
    let packet =
      Packet.make ~flow:st.conn.flow ~segment:(Packet.Data st.data_bytes)
        ~sent_at:(Netsim.Engine.now t.engine)
    in
    st.conn.data_sent <- st.conn.data_sent + 1;
    Lispdp.Dataplane.send_from_host t.dataplane packet;
    ignore
      (Netsim.Engine.schedule t.engine ~delay:t.data_gap (fun () ->
           send_data t st (i + 1)))
  end

let create ~engine ~dataplane ?(initial_rto = 1.0) ?(max_syn_retries = 6)
    ?(data_gap = 0.002) ?obs () =
  let t =
    { engine; dataplane; initial_rto; max_syn_retries; data_gap; obs;
      states = Hashtbl.create 256; all = [] }
  in
  let internet = Lispdp.Dataplane.internet dataplane in
  Array.iter
    (fun domain ->
      Array.iteri
        (fun i _ ->
          Lispdp.Dataplane.set_host_receiver dataplane
            (Topology.Domain.host_eid domain i)
            (Some (fun packet -> on_receive t packet)))
        domain.Topology.Domain.hosts)
    internet.Topology.Builder.domains;
  t

let rec send_syn t st ~attempt =
  let now = Netsim.Engine.now t.engine in
  let syn = Packet.make ~flow:st.conn.flow ~segment:Packet.Syn ~sent_at:now in
  st.conn.syn_transmissions <- st.conn.syn_transmissions + 1;
  if obs_on t then
    obs_emit t ~eid:st.conn.flow.Flow.src ~flow:st.conn.flow
      (Obs.Event.Syn_sent { attempt = attempt + 1 });
  Lispdp.Dataplane.send_from_host t.dataplane syn;
  let rto = t.initial_rto *. (2.0 ** float_of_int attempt) in
  st.rto_timer <-
    Some
      (Netsim.Engine.schedule t.engine ~delay:rto (fun () ->
           st.rto_timer <- None;
           if st.conn.established_at = None then
             if attempt + 1 > t.max_syn_retries then begin
               st.conn.failed <- true;
               if obs_on t then
                 obs_emit t ~eid:st.conn.flow.Flow.src ~flow:st.conn.flow
                   (Obs.Event.Conn_failed { reason = "syn-retries-exhausted" })
             end
             else send_syn t st ~attempt:(attempt + 1)))

let start_connection t ~flow ?(data_packets = 10) ?(data_bytes = 1200)
    ?on_established ?on_complete () =
  if Hashtbl.mem t.states flow then
    invalid_arg "Tcp.start_connection: flow already active";
  let conn =
    { flow; started_at = Netsim.Engine.now t.engine; established_at = None;
      failed = false; syn_transmissions = 0; first_syn_arrival = None;
      data_sent = 0; data_delivered = 0; completed_at = None }
  in
  let st =
    { conn; data_packets; data_bytes; on_established; on_complete;
      rto_timer = None }
  in
  Hashtbl.replace t.states flow st;
  t.all <- conn :: t.all;
  send_syn t st ~attempt:0;
  conn

let summary t ~established ~failed ~retransmissions =
  List.iter
    (fun c ->
      if c.established_at <> None then incr established;
      if c.failed then incr failed;
      retransmissions := !retransmissions + c.syn_transmissions - 1)
    t.all
