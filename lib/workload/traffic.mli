(** Traffic generation over an internet.

    Draws flows whose destination-domain popularity is Zipf-distributed
    (cache-friendliness knob of experiments T1/F3) and whose sizes are
    Pareto-heavy-tailed.  Source ports are allocated sequentially within
    the ephemeral range [1024, 65535]; when they wrap (runs past ~64k
    flows) the destination port is stepped instead, so the full
    (src, dst, src_port, dst_port) tuple keeps every generated flow
    unique well past a billion flows. *)

type t

val create :
  rng:Netsim.Rng.t ->
  internet:Topology.Builder.t ->
  ?zipf_alpha:float ->
  ?hotspots:(int * float) list ->
  unit ->
  t
(** [zipf_alpha] (default 0.9) shapes destination-domain popularity.
    [hotspots] overrides popularity entirely: a list of
    [(domain id, weight)] from which destinations are drawn — used by
    the TE experiments to aim load at one multihomed victim domain. *)

val random_flow : t -> ?src_domain:int -> ?dst_domain:int -> unit -> Nettypes.Flow.t
(** Draw a flow: source domain uniform (unless fixed), destination by
    popularity (unless fixed), hosts uniform, fresh (src_port, dst_port)
    pair.  The destination domain always differs from the source
    domain. *)

val destination_rank : t -> int -> int
(** Popularity rank that maps to the given draw index — exposed for
    tests. *)

val flow_size_packets : t -> ?mean:float -> unit -> int
(** Pareto-distributed flow size (packets), shape 1.3, at least 1.
    [mean] (default 12.0) sets the scale. *)

val host_name_of_flow : t -> Nettypes.Flow.t -> string
(** DNS name of the flow's destination host (what the initiator
    resolves before connecting). *)
