(** TCP end-host model.

    The paper's latency claim is about TCP connection establishment:
    [T_DNS + 2·OWD(S,D) + OWD(D,S)] without LISP versus an extra
    [T_map_resol] with it.  This driver models exactly the parts that
    matter for that claim: the three-way handshake, RFC-style
    exponential SYN retransmission (initial RTO 1 s, doubling, bounded
    retries), and a one-way data phase whose per-packet delivery is
    tracked so drop experiments can count losses.

    One driver instance owns all hosts of an internet: it registers
    itself as the dataplane receiver for every host EID and multiplexes
    connections by flow. *)

type t

val create :
  engine:Netsim.Engine.t ->
  dataplane:Lispdp.Dataplane.t ->
  ?initial_rto:float ->
  ?max_syn_retries:int ->
  ?data_gap:float ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [initial_rto] defaults to 1 s, [max_syn_retries] to 6 (RFC 6298
    style doubling), [data_gap] (pacing between data packets) to 2 ms.
    With [?obs], handshake milestones ([Syn_sent], [Syn_received],
    [Conn_established], [Conn_failed]) are emitted for the span layer;
    a disabled hub costs one boolean test per site. *)

type conn = {
  flow : Nettypes.Flow.t;
  started_at : float;  (** first SYN emission time *)
  mutable established_at : float option;  (** SYN/ACK received back *)
  mutable failed : bool;  (** SYN retries exhausted *)
  mutable syn_transmissions : int;  (** total SYNs sent (>= 1) *)
  mutable first_syn_arrival : float option;
      (** when the {e first-emitted} SYN (or a retry) first reached the
          responder — the first-packet delivery delay of experiment F2 *)
  mutable data_sent : int;
  mutable data_delivered : int;
  mutable completed_at : float option;  (** all data packets arrived *)
}

val handshake_time : conn -> float option
(** [established_at - started_at], when established. *)

val start_connection :
  t ->
  flow:Nettypes.Flow.t ->
  ?data_packets:int ->
  ?data_bytes:int ->
  ?on_established:(conn -> unit) ->
  ?on_complete:(conn -> unit) ->
  unit ->
  conn
(** Open a connection; [data_packets] (default 10) segments of
    [data_bytes] (default 1200) follow the handshake from the initiator
    to the responder.  [on_complete] fires when the responder has
    received every data segment; it never fires for failed or lossy
    connections. *)

val connections : t -> conn list
(** All connections ever started, oldest first. *)

val summary :
  t -> established:int ref -> failed:int ref -> retransmissions:int ref -> unit
(** Fold headline counts into the given refs (convenience for
    experiment code). *)
