open Nettypes

(* A synthetic internet's worth of EID prefixes: up to millions of
   mutually non-overlapping IPv4 prefixes with a BGP-DFZ-like length
   mix (dominated by /24s, thinning toward short prefixes), each
   addressable by popularity rank.

   Non-overlap is by construction: the 256 top-level /8 blocks are
   partitioned between prefix lengths, so two prefixes of different
   lengths can never nest, and two prefixes of the same length are
   distinct subnets of their blocks.  Real routing tables do contain
   covering prefixes; giving every rank its own address keeps
   longest-prefix matches unambiguous, which the cache-model
   experiments need (one rank = one cache line).

   A rank maps to a prefix through a seeded Fisher-Yates shuffle of the
   whole universe, so popularity is uncorrelated with both address and
   prefix length. *)

type t = { packed : int array }

(* Per-length weight of the target mix and the /8-block budget that
   caps it (the full real-DFZ share of short prefixes cannot fit a
   non-overlapping 2^32 space at millions of entries; overflow spills
   into the /24 pool, which has room for ~8.6M).  Budgets sum to 256. *)
let shape =
  [| (* len, weight, blocks *)
     (8, 0.00002, 1); (9, 0.00003, 1); (10, 0.00005, 1); (11, 0.0001, 1);
     (12, 0.0002, 1); (13, 0.0004, 1); (14, 0.0008, 1); (15, 0.0015, 1);
     (16, 0.02, 24); (17, 0.004, 8); (18, 0.008, 8); (19, 0.015, 12);
     (20, 0.03, 12); (21, 0.04, 12); (22, 0.10, 24); (23, 0.08, 16);
     (24, 0.6999, 132) |]

let per_block len = 1 lsl (len - 8)
let capacity_of (len, _, blocks) = blocks * per_block len
let capacity = Array.fold_left (fun acc s -> acc + capacity_of s) 0 shape

let generate ~rng ~n =
  if n <= 0 then invalid_arg "Eid_universe.generate: n must be positive";
  if n > capacity then
    invalid_arg
      (Printf.sprintf "Eid_universe.generate: n = %d exceeds capacity %d" n
         capacity);
  (* Target counts, clamped per length; the shortfall (from rounding
     and from clamped short-prefix classes) goes to the longest
     prefixes, which have the spare room. *)
  let counts =
    Array.map
      (fun ((_, w, _) as s) ->
        Stdlib.min (int_of_float (w *. float_of_int n)) (capacity_of s))
      shape
  in
  let total = Array.fold_left ( + ) 0 counts in
  let deficit = ref (n - total) in
  for i = Array.length shape - 1 downto 0 do
    if !deficit > 0 then begin
      let room = capacity_of shape.(i) - counts.(i) in
      let take = Stdlib.min room !deficit in
      counts.(i) <- counts.(i) + take;
      deficit := !deficit - take
    end
  done;
  let packed = Array.make n 0 in
  let idx = ref 0 in
  let next_block = ref 0 in
  Array.iteri
    (fun i (len, _, _) ->
      let pb = per_block len in
      let base = !next_block in
      for j = 0 to counts.(i) - 1 do
        let block = base + (j / pb) in
        let network = (block lsl 24) lor ((j mod pb) lsl (32 - len)) in
        packed.(!idx) <- (network lsl 6) lor len;
        incr idx
      done;
      next_block := base + ((counts.(i) + pb - 1) / pb))
    shape;
  Netsim.Rng.shuffle rng packed;
  { packed }

let size t = Array.length t.packed

let prefix t rank =
  let key = t.packed.(rank) in
  Ipv4.prefix (Ipv4.addr_of_int (key lsr 6)) (key land 63)

let network t rank = Ipv4.addr_of_int (t.packed.(rank) lsr 6)

let length_counts t =
  let counts = Array.make 33 0 in
  Array.iter (fun key -> counts.(key land 63) <- counts.(key land 63) + 1)
    t.packed;
  let acc = ref [] in
  for len = 32 downto 0 do
    if counts.(len) > 0 then acc := (len, counts.(len)) :: !acc
  done;
  !acc
