let poisson ~engine ~rng ~rate ~duration ~f =
  if rate <= 0.0 then invalid_arg "Arrivals.poisson: rate must be positive";
  if duration <= 0.0 then invalid_arg "Arrivals.poisson: duration must be positive";
  let rec generate acc elapsed =
    let elapsed = elapsed +. Netsim.Rng.exponential rng ~mean:(1.0 /. rate) in
    if elapsed >= duration then List.rev acc else generate (elapsed :: acc) elapsed
  in
  let times = generate [] 0.0 in
  List.iteri
    (fun i delay -> ignore (Netsim.Engine.schedule engine ~delay (fun () -> f i)))
    times;
  List.length times

let poisson_stream ~engine ~rng ~rate ~duration ~f =
  if rate <= 0.0 then invalid_arg "Arrivals.poisson_stream: rate must be positive";
  if duration <= 0.0 then
    invalid_arg "Arrivals.poisson_stream: duration must be positive";
  let start = Netsim.Engine.now engine in
  (* Self-scheduling chain: each arrival draws the next gap and schedules
     one event, so the engine heap holds O(1) pending arrivals instead of
     the whole window, and neither the gap list nor a per-arrival closure
     is allocated.  The draw sequence — and hence every arrival time — is
     identical to [poisson] with the same stream. *)
  let index = ref 0 in
  let elapsed = ref 0.0 in
  let rec fire () =
    let i = !index in
    incr index;
    schedule_next ();
    f i
  and schedule_next () =
    let e = !elapsed +. Netsim.Rng.exponential rng ~mean:(1.0 /. rate) in
    elapsed := e;
    if e < duration then
      ignore (Netsim.Engine.schedule_at engine ~time:(start +. e) fire)
  in
  schedule_next ()

let uniform_spread ~engine ~count ~duration ~f =
  if count < 0 then invalid_arg "Arrivals.uniform_spread: negative count";
  for i = 0 to count - 1 do
    let delay = duration *. float_of_int i /. float_of_int (Stdlib.max 1 count) in
    ignore (Netsim.Engine.schedule engine ~delay (fun () -> f i))
  done;
  count

let burst ~engine ~count ~f =
  if count < 0 then invalid_arg "Arrivals.burst: negative count";
  for i = 0 to count - 1 do
    ignore (Netsim.Engine.schedule engine ~delay:0.0 (fun () -> f i))
  done;
  count
