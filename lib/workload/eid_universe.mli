(** Synthetic internet-scale EID prefix universe.

    Generates up to millions of mutually non-overlapping IPv4 EID
    prefixes with a realistic, /24-dominated length mix (the real DFZ
    shape, capacity-clamped so the universe stays overlap-free inside
    2^32 address space), addressable by popularity rank.  Rank is
    decorrelated from address and prefix length by a seeded shuffle, so
    feeding ranks drawn from {!Netsim.Rng.Zipf} through {!prefix} gives
    a heavy-tailed reference stream over structurally realistic
    prefixes — the workload behind the M-series cache experiments. *)

type t

val capacity : int
(** Largest universe [generate] can build (~9.7M prefixes). *)

val generate : rng:Netsim.Rng.t -> n:int -> t
(** Build a universe of [n] prefixes.  Deterministic for a given rng
    state.  @raise Invalid_argument when [n <= 0] or [n > capacity]. *)

val size : t -> int

val prefix : t -> int -> Nettypes.Ipv4.prefix
(** The prefix at a popularity rank (0 = most popular under a Zipf
    stream). *)

val network : t -> int -> Nettypes.Ipv4.addr
(** The network address of {!prefix} — the address an ITR would look
    up to hit exactly that cache line. *)

val length_counts : t -> (int * int) list
(** Prefix-length histogram [(length, count)], ascending, for tests and
    reporting. *)
