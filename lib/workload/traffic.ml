open Nettypes

type popularity =
  | Zipf of Netsim.Rng.Zipf.dist
  | Hotspots of { ids : int array; cumulative : float array }

type t = {
  rng : Netsim.Rng.t;
  internet : Topology.Builder.t;
  popularity : popularity;
  mutable next_src_port : int;
  mutable next_dst_port : int;
}

let create ~rng ~internet ?(zipf_alpha = 0.9) ?hotspots () =
  let n = Array.length internet.Topology.Builder.domains in
  let popularity =
    match hotspots with
    | Some weights when weights <> [] ->
        let ids = Array.of_list (List.map fst weights) in
        Array.iter
          (fun id ->
            if id < 0 || id >= n then invalid_arg "Traffic.create: bad hotspot id")
          ids;
        let raw = Array.of_list (List.map snd weights) in
        let total = Array.fold_left ( +. ) 0.0 raw in
        if total <= 0.0 then invalid_arg "Traffic.create: hotspot weights sum to 0";
        let cumulative = Array.make (Array.length raw) 0.0 in
        let acc = ref 0.0 in
        Array.iteri
          (fun i w ->
            acc := !acc +. (w /. total);
            cumulative.(i) <- !acc)
          raw;
        Hotspots { ids; cumulative }
    | Some _ | None -> Zipf (Netsim.Rng.Zipf.create ~n ~alpha:zipf_alpha)
  in
  { rng; internet; popularity; next_src_port = 1024; next_dst_port = 80 }

(* Source ports march through [1024, 65535] (the ephemeral range; also
   the range [Wire.Buf.Writer.u16] can encode).  A run beyond the ~64k
   ports in that range wraps the source port and steps the destination
   port instead, so the full (src, dst, src_port, dst_port) tuple stays
   unique for ~4 billion flows rather than colliding — or overflowing
   u16 — after 64512. *)
let next_ports t =
  let src = t.next_src_port + 1 in
  if src > 65535 then begin
    t.next_src_port <- 1024;
    t.next_dst_port <-
      (if t.next_dst_port >= 65535 then 80 else t.next_dst_port + 1);
    (1024, t.next_dst_port)
  end
  else begin
    t.next_src_port <- src;
    (src, t.next_dst_port)
  end

(* Popularity rank r corresponds to domain id r: domain 0 is the most
   popular destination of a Zipf workload. *)
let destination_rank t rank =
  rank mod Array.length t.internet.Topology.Builder.domains

let draw_destination t =
  match t.popularity with
  | Zipf dist -> destination_rank t (Netsim.Rng.Zipf.sample dist t.rng)
  | Hotspots { ids; cumulative } ->
      let u = Netsim.Rng.float t.rng in
      (* Least index whose cumulative weight exceeds [u] (the last one
         when rounding left the total just below 1), found by bisection
         rather than a linear scan — hotspot lists are small today, but
         the TE experiments sweep them wider at scale. *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cumulative.(mid) > u then search lo mid else search (mid + 1) hi
      in
      ids.(search 0 (Array.length cumulative - 1))

let random_flow t ?src_domain ?dst_domain () =
  let domains = t.internet.Topology.Builder.domains in
  let n = Array.length domains in
  if n < 2 then invalid_arg "Traffic.random_flow: need at least two domains";
  let src_id =
    match src_domain with Some i -> i | None -> Netsim.Rng.int t.rng n
  in
  let dst_id =
    match dst_domain with
    | Some i -> i
    | None ->
        let rec draw attempts =
          let candidate = draw_destination t in
          if candidate <> src_id then candidate
          else if attempts > 16 then (src_id + 1) mod n
          else draw (attempts + 1)
        in
        draw 0
  in
  if src_id = dst_id then invalid_arg "Traffic.random_flow: src = dst domain";
  let src_dom = domains.(src_id) and dst_dom = domains.(dst_id) in
  let src_host = Netsim.Rng.int t.rng (Array.length src_dom.Topology.Domain.hosts) in
  let dst_host = Netsim.Rng.int t.rng (Array.length dst_dom.Topology.Domain.hosts) in
  let src_port, dst_port = next_ports t in
  Flow.create
    ~src:(Topology.Domain.host_eid src_dom src_host)
    ~dst:(Topology.Domain.host_eid dst_dom dst_host)
    ~src_port ~dst_port ()

let flow_size_packets t ?(mean = 12.0) () =
  let shape = 1.3 in
  let scale = mean *. (shape -. 1.0) /. shape in
  Stdlib.max 1 (int_of_float (Netsim.Rng.pareto t.rng ~shape ~scale))

let host_name_of_flow t flow =
  match Topology.Builder.domain_of_eid t.internet flow.Flow.dst with
  | None -> invalid_arg "Traffic.host_name_of_flow: unknown destination"
  | Some domain -> (
      match Topology.Domain.host_of_eid domain flow.Flow.dst with
      | Some i -> Topology.Domain.host_name domain i
      | None -> invalid_arg "Traffic.host_name_of_flow: destination not a host")
