(** Analytical LISP map-cache model (Coras et al.).

    Predicts steady-state LRU miss rate as a function of cache size
    under the independent reference model via Che's working-set
    approximation: a cache of capacity [C] holds exactly the prefixes
    referenced within one characteristic time [T_C], the unique
    solution of [sum_i (1 - e^(-p_i T)) = C].  The M-series bench
    experiments validate measured miss curves against these
    predictions; see doc/cache_model.md. *)

type prediction = {
  characteristic_time : float;
      (** the working-set window, in references; [infinity] when the
          whole universe fits *)
  hit_rate : float;
  miss_rate : float;
}

val zipf_masses : n:int -> alpha:float -> float array
(** Normalized Zipf popularity masses over ranks [0 .. n-1],
    [p_k ∝ 1/(k+1)^alpha] — the same construction {!Netsim.Rng.Zipf}
    samples from. *)

val predict : masses:float array -> capacity:int -> prediction
(** Solve for the characteristic time by safeguarded Newton iteration
    (monotone from below, since occupancy is concave) and evaluate the
    predicted hit/miss rate.  O(|masses|) per iteration, a few dozen
    iterations.  @raise Invalid_argument on empty masses or
    non-positive capacity. *)
