(** Bidirectional links with per-direction byte accounting.

    Latency is symmetric; capacity applies to each direction
    independently.  The traffic-engineering experiments read the byte
    counters to compute per-direction utilisation of a domain's provider
    uplinks. *)

type t

type kind =
  | Internal  (** intra-domain wiring (hub spokes, DNS/PCE taps) *)
  | External  (** provider access links and the core mesh *)

val create :
  a:Node.id -> b:Node.id -> latency:float -> ?capacity_bps:float ->
  ?kind:kind -> unit -> t
(** [latency] in seconds, must be positive.  [capacity_bps] defaults to
    1 Gbit/s; [kind] to [External].  Shortest-path computation uses the
    kind to keep inter-domain routes valley-free: a path may use
    internal links only while leaving its source domain or after
    entering its destination domain, never to transit through a
    third domain. *)

val id : t -> int
(** Process-global sequential id (creation order), the key for the
    telemetry plane's per-link stores. *)

val a : t -> Node.id
val b : t -> Node.id
val latency : t -> float
val capacity_bps : t -> float
val kind : t -> kind

val other_end : t -> Node.id -> Node.id
(** The opposite endpoint; raises [Invalid_argument] if the node is not
    an endpoint of this link. *)

val connects : t -> Node.id -> bool

val is_up : t -> bool
(** Links start up; failure experiments flip them via
    {!Graph.set_link_up}, which also invalidates routing caches. *)

val set_up_internal : t -> bool -> unit
(** Used by [Graph.set_link_up]; calling it directly leaves stale routing
    caches behind — always go through the graph. *)

val account : t -> src:Node.id -> bytes:int -> unit
(** Record [bytes] flowing from endpoint [src] toward the other end.
    Also feeds the telemetry plane's windowed per-link (and, for
    registered uplinks, per-provider) counters when
    {!Netsim.Telemetry.enabled} — one flag test otherwise. *)

val bytes_from : t -> Node.id -> int
(** Cumulative bytes sent from the given endpoint over this link. *)

val utilisation_from : t -> Node.id -> duration:float -> float
(** Average utilisation (offered bits / capacity) of the direction
    leaving [src] over a window of [duration] seconds. *)

val reset_counters : t -> unit
val pp : Format.formatter -> t -> unit
