type t = {
  mutable nodes : Node.t array;
  mutable node_count : int;
  mutable adjacency : (Node.id * Link.t) list array;
  mutable links : Link.t list;
  (* Per-source Dijkstra results: distance and predecessor arrays. *)
  sssp_cache : (Node.id, float array * int array) Hashtbl.t;
}

let dummy_node : Node.t = { id = -1; kind = Node.Host; label = "" }

let create () =
  { nodes = Array.make 16 dummy_node; node_count = 0;
    adjacency = Array.make 16 []; links = [];
    sssp_cache = Hashtbl.create 64 }

let grow t =
  let capacity = Array.length t.nodes in
  let nodes = Array.make (2 * capacity) dummy_node in
  Array.blit t.nodes 0 nodes 0 t.node_count;
  t.nodes <- nodes;
  let adjacency = Array.make (2 * capacity) [] in
  Array.blit t.adjacency 0 adjacency 0 t.node_count;
  t.adjacency <- adjacency

let add_node t ~kind ~label =
  if t.node_count = Array.length t.nodes then grow t;
  let id = t.node_count in
  t.nodes.(id) <- { Node.id; kind; label };
  t.node_count <- id + 1;
  id

let check_id t id fn =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Graph.%s: unknown node %d" fn id)

let node t id =
  check_id t id "node";
  t.nodes.(id)

let node_count t = t.node_count
let invalidate_cache t = Hashtbl.reset t.sssp_cache

let link_between t a b =
  check_id t a "link_between";
  check_id t b "link_between";
  List.assoc_opt b t.adjacency.(a)

let connect t a b ~latency ?capacity_bps ?kind () =
  check_id t a "connect";
  check_id t b "connect";
  if a = b then invalid_arg "Graph.connect: self-loop";
  if link_between t a b <> None then
    invalid_arg (Printf.sprintf "Graph.connect: duplicate link %d-%d" a b);
  let link = Link.create ~a ~b ~latency ?capacity_bps ?kind () in
  t.adjacency.(a) <- (b, link) :: t.adjacency.(a);
  t.adjacency.(b) <- (a, link) :: t.adjacency.(b);
  t.links <- link :: t.links;
  invalidate_cache t;
  link

let links t = t.links

let set_link_up t link up =
  if Link.is_up link <> up then begin
    Link.set_up_internal link up;
    invalidate_cache t
  end

let neighbours t id =
  check_id t id "neighbours";
  t.adjacency.(id)

(* Valley-free Dijkstra from [src].  The search state is (node, phase)
   with three phases:

     0 - still inside the source domain (only internal links used);
     1 - on external links (access / core);
     2 - inside the destination domain (internal links after external).

   Internal links keep phase 0, move 1 -> 2, and keep 2; external links
   move 0 -> 1, keep 1, and are forbidden from phase 2.  This is exactly
   "no domain transits traffic between two providers".  O(V^2) with the
   dense scan, fine at the simulated scales (a few hundred nodes). *)
let phases = 3

let dijkstra t src =
  let n = t.node_count in
  let dist = Array.make (n * phases) infinity in
  let pred = Array.make (n * phases) (-1) in
  let visited = Array.make (n * phases) false in
  dist.(src * phases) <- 0.0;
  let states = n * phases in
  for _ = 1 to states do
    let u = ref (-1) in
    let best = ref infinity in
    for v = 0 to states - 1 do
      if (not visited.(v)) && dist.(v) < !best then begin
        best := dist.(v);
        u := v
      end
    done;
    if !u >= 0 then begin
      visited.(!u) <- true;
      let node = !u / phases and phase = !u mod phases in
      List.iter
        (fun (v, link) ->
          let next_phase =
            if not (Link.is_up link) then None
            else
            match (Link.kind link, phase) with
            | Link.Internal, 0 -> Some 0
            | Link.Internal, (1 | 2) -> Some 2
            | Link.External, (0 | 1) -> Some 1
            | Link.External, 2 -> None
            | (Link.Internal | Link.External), _ -> None
          in
          match next_phase with
          | Some p ->
              let state = (v * phases) + p in
              let candidate = dist.(!u) +. Link.latency link in
              if candidate < dist.(state) then begin
                dist.(state) <- candidate;
                pred.(state) <- !u
              end
          | None -> ignore node)
        t.adjacency.(node)
    end
  done;
  (dist, pred)

let sssp t src =
  match Hashtbl.find_opt t.sssp_cache src with
  | Some r -> r
  | None ->
      let r = dijkstra t src in
      Hashtbl.replace t.sssp_cache src r;
      r

(* A border router may not be reached through a sibling border (phase
   2): traffic addressed to its RLOC arrives over its own uplink. *)
let allowed_phases t node =
  match t.nodes.(node).Node.kind with
  | Node.Border_router -> [ 0; 1 ]
  | Node.Host | Node.Dns_server | Node.Pce | Node.Provider_core | Node.Hub ->
      [ 0; 1; 2 ]

let best_state t dist b =
  List.fold_left
    (fun acc p ->
      let state = (b * phases) + p in
      match acc with
      | Some s when dist.(s) <= dist.(state) -> acc
      | Some _ | None -> if dist.(state) = infinity then acc else Some state)
    None (allowed_phases t b)

let latency_between t a b =
  check_id t a "latency_between";
  check_id t b "latency_between";
  if a = b then 0.0
  else begin
    let dist, _ = sssp t a in
    match best_state t dist b with
    | Some s -> dist.(s)
    | None -> raise Not_found
  end

let path_between t a b =
  check_id t a "path_between";
  check_id t b "path_between";
  if a = b then [ a ]
  else begin
    let dist, pred = sssp t a in
    match best_state t dist b with
    | None -> raise Not_found
    | Some final ->
        let rec walk state acc =
          let node = state / phases in
          if node = a && state mod phases = 0 then node :: acc
          else walk pred.(state) (node :: acc)
        in
        walk final []
  end

let account_path t ~src ~dst ~bytes =
  let path = path_between t src dst in
  let telemetry = Netsim.Telemetry.enabled () in
  let rec charge = function
    | u :: (v :: tail as rest) ->
        (match link_between t u v with
        | Some link -> Link.account link ~src:u ~bytes
        | None -> assert false);
        (* Interior hops transit [v]; endpoints are charged by the
           dataplane as tx/rx instead. *)
        if telemetry && tail <> [] then
          Netsim.Telemetry.on_node_fwd ~node:v ~bytes;
        charge rest
    | [ _ ] | [] -> ()
  in
  charge path
