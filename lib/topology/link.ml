type kind = Internal | External

type t = {
  id : int;
  a : Node.id;
  b : Node.id;
  latency : float;
  capacity_bps : float;
  kind : kind;
  mutable up : bool;
  mutable bytes_ab : int;
  mutable bytes_ba : int;
}

(* Process-global sequential ids: creation order is deterministic per
   run, and the telemetry plane keys its per-link stores on them. *)
let next_id = ref 0

let create ~a ~b ~latency ?(capacity_bps = 1e9) ?(kind = External) () =
  if latency <= 0.0 then invalid_arg "Link.create: latency must be positive";
  if capacity_bps <= 0.0 then
    invalid_arg "Link.create: capacity must be positive";
  let id = !next_id in
  incr next_id;
  { id; a; b; latency; capacity_bps; kind; up = true; bytes_ab = 0;
    bytes_ba = 0 }

let id t = t.id
let a t = t.a
let b t = t.b
let latency t = t.latency
let capacity_bps t = t.capacity_bps
let kind t = t.kind
let is_up t = t.up

(* Only Graph may flip this (it must invalidate its caches), hence the
   internal setter is not exported through the mli. *)
let set_up_internal t up = t.up <- up

let other_end t node =
  if node = t.a then t.b
  else if node = t.b then t.a
  else invalid_arg "Link.other_end: node is not an endpoint"

let connects t node = node = t.a || node = t.b

let account t ~src ~bytes =
  if src = t.a then begin
    t.bytes_ab <- t.bytes_ab + bytes;
    if Netsim.Telemetry.enabled () then
      Netsim.Telemetry.on_link ~link:t.id ~dir:0 ~bytes
  end
  else if src = t.b then begin
    t.bytes_ba <- t.bytes_ba + bytes;
    if Netsim.Telemetry.enabled () then
      Netsim.Telemetry.on_link ~link:t.id ~dir:1 ~bytes
  end
  else invalid_arg "Link.account: node is not an endpoint"

let bytes_from t node =
  if node = t.a then t.bytes_ab
  else if node = t.b then t.bytes_ba
  else invalid_arg "Link.bytes_from: node is not an endpoint"

let utilisation_from t node ~duration =
  if duration <= 0.0 then invalid_arg "Link.utilisation_from: duration <= 0";
  float_of_int (bytes_from t node) *. 8.0 /. (t.capacity_bps *. duration)

let reset_counters t =
  t.bytes_ab <- 0;
  t.bytes_ba <- 0

let pp ppf t =
  Format.fprintf ppf "%d<->%d %.1fms %.0fMbps" t.a t.b (t.latency *. 1e3)
    (t.capacity_bps /. 1e6)
