(* Command-line interface to the reproduction.

     repro_cli list                     enumerate experiments
     repro_cli run t1 [--csv DIR]       run one (or more) experiments
                [--trace-out FILE]      ... exporting structured events (JSONL)
                [--metrics-out FILE]    ... and metrics (JSON, or CSV by suffix)
     repro_cli obs FILE                 summarise an exported event stream
     repro_cli spans FILE               per-run latency decomposition
                [--chrome FILE]        ... plus a Perfetto-loadable trace
     repro_cli prof t1 [--chrome FILE]  run experiments under the self-profiler
     repro_cli trace                    print the Figure-1 walkthrough
     repro_cli topology [-d N] [-p N]   describe a generated internet
     repro_cli connect [--cp NAME]      one measured connection end-to-end *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-6s %s\n" e.Experiments.Exp_index.exp_id
          e.Experiments.Exp_index.exp_title)
      Experiments.Exp_index.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments the harness can regenerate.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment ids (see $(b,list)).")
  in
  let csv_dir =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write each table as a CSV file into $(docv).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Export every structured event of every scenario the \
                 experiments build, one JSON object per line.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Export the metrics registry of every scenario: final \
                 snapshot plus periodic samples, as JSON (or CSV when \
                 $(docv) ends in .csv).")
  in
  let metrics_interval =
    Arg.(value & opt float 1.0 & info [ "metrics-interval" ] ~docv:"SECONDS"
           ~doc:"Simulated-time spacing of periodic metrics samples.")
  in
  let run ids csv_dir trace_out metrics_out metrics_interval =
    let entries =
      List.map
        (fun id ->
          match Experiments.Exp_index.find id with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment id: %s (try 'list')\n" id;
              exit 1)
        ids
    in
    let exporting = trace_out <> None || metrics_out <> None in
    if exporting then begin
      if metrics_interval <= 0.0 then begin
        Printf.eprintf "repro_cli: --metrics-interval must be positive\n";
        exit 1
      end;
      ignore
        (Obs.Runtime.install ?trace_out ?metrics_out ~metrics_interval ())
    end;
    Fun.protect
      ~finally:(fun () ->
        if exporting then begin
          Obs.Runtime.finalize ();
          Option.iter (Printf.printf "(events written to %s)\n") trace_out;
          Option.iter (Printf.printf "(metrics written to %s)\n") metrics_out
        end)
      (fun () ->
        List.iter
          (fun e ->
            Printf.printf ">>> [%s] %s\n%!" e.Experiments.Exp_index.exp_id
              e.Experiments.Exp_index.exp_title;
            match csv_dir with
            | None -> e.Experiments.Exp_index.print ()
            | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                let tables = e.Experiments.Exp_index.tables () in
                List.iteri
                  (fun i table ->
                    Metrics.Table.print table;
                    let file =
                      Filename.concat dir
                        (Printf.sprintf "%s_%d.csv"
                           e.Experiments.Exp_index.exp_id i)
                    in
                    let oc = open_out file in
                    output_string oc (Metrics.Table.to_csv table);
                    close_out oc;
                    Printf.printf "(csv written to %s)\n" file)
                  tables)
          entries)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments by id and print (optionally export) their tables.")
    Term.(const run $ ids $ csv_dir $ trace_out $ metrics_out
          $ metrics_interval)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let run () = Experiments.Exp_f1.print () in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the step-by-step event trace of the paper's Figure 1.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* topology                                                            *)
(* ------------------------------------------------------------------ *)

let topology_cmd =
  let domains =
    Arg.(value & opt int 10 & info [ "d"; "domains" ] ~docv:"N"
           ~doc:"Number of LISP domains.")
  in
  let providers =
    Arg.(value & opt int 4 & info [ "p"; "providers" ] ~docv:"N"
           ~doc:"Number of transit providers.")
  in
  let borders =
    Arg.(value & opt int 2 & info [ "b"; "borders" ] ~docv:"N"
           ~doc:"Border routers per domain.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let run domains providers borders seed =
    let net =
      Topology.Builder.generate
        (Netsim.Rng.create seed)
        { Topology.Builder.default_params with
          Topology.Builder.domain_count = domains; provider_count = providers;
          borders_per_domain = borders }
    in
    Format.printf "%d nodes, %d providers, %d domains@."
      (Topology.Graph.node_count net.Topology.Builder.graph)
      (Array.length net.Topology.Builder.providers)
      (Array.length net.Topology.Builder.domains);
    Array.iter
      (fun (p : Topology.Builder.provider) ->
        Format.printf "provider %s: %a@." p.Topology.Builder.provider_name
          Nettypes.Ipv4.pp_prefix p.Topology.Builder.prefix)
      net.Topology.Builder.providers;
    Array.iter
      (fun d ->
        Format.printf "%a@." Topology.Domain.pp d;
        Array.iter
          (fun b ->
            Format.printf "  rloc %a via provider %s (%.1f ms uplink)@."
              Nettypes.Ipv4.pp_addr b.Topology.Domain.rloc
              net.Topology.Builder.providers.(b.Topology.Domain.provider)
                .Topology.Builder.provider_name
              (Topology.Link.latency b.Topology.Domain.uplink *. 1e3))
          d.Topology.Domain.borders)
      net.Topology.Builder.domains
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate and describe a random internet.")
    Term.(const run $ domains $ providers $ borders $ seed)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Scenario description file (see lib/core/scenario_file.mli).")
  in
  let run file =
    match Core.Scenario_file.load file with
    | Error message ->
        Printf.eprintf "%s: %s\n" file message;
        exit 1
    | Ok { Core.Scenario_file.config; workload } ->
        let spec =
          { (Experiments.Harness.default_spec config) with
            Experiments.Harness.flows = workload.Core.Scenario_file.flows;
            rate = workload.Core.Scenario_file.rate;
            zipf_alpha = workload.Core.Scenario_file.zipf_alpha;
            data_packets = `Fixed workload.Core.Scenario_file.data_packets;
            data_bytes = workload.Core.Scenario_file.data_bytes;
            hotspots =
              Option.map
                (fun d -> [ (d, 1.0) ])
                workload.Core.Scenario_file.hotspot }
        in
        let r = Experiments.Harness.run spec in
        let table =
          Metrics.Table.create
            ~title:(Printf.sprintf "simulation: %s" (Filename.basename file))
            ~columns:[ "metric"; "value" ]
        in
        let h = Experiments.Harness.mean r.Experiments.Harness.setups in
        Metrics.Table.add_rows table
          [ [ "control plane"; Core.Scenario.cp_label config.Core.Scenario.cp ];
            [ "flows opened"; string_of_int r.Experiments.Harness.opened ];
            [ "established"; string_of_int r.Experiments.Harness.established ];
            [ "failed"; string_of_int r.Experiments.Harness.failed ];
            [ "drops"; string_of_int (Experiments.Harness.drops r) ];
            [ "syn retransmissions";
              string_of_int r.Experiments.Harness.syn_retransmissions ];
            [ "mean setup (ms)"; Metrics.Table.cell_ms h ];
            [ "p95 setup (ms)";
              Metrics.Table.cell_ms
                (Experiments.Harness.percentile_or_zero
                   r.Experiments.Harness.setups 95.0) ];
            [ "cache hit ratio";
              Metrics.Table.cell_pct (Experiments.Harness.cache_hit_ratio r) ];
            [ "control messages";
              string_of_int
                (Mapsys.Cp_stats.message_total (Experiments.Harness.cp_stats r)) ] ];
        (match Core.Scenario.lifecycle r.Experiments.Harness.scenario with
        | Some _ ->
            let stats = Experiments.Harness.cp_stats r in
            let pull_resolved =
              match
                Core.Scenario.fallback_pull r.Experiments.Harness.scenario
              with
              | Some pull ->
                  (Mapsys.Pull.stats pull).Mapsys.Cp_stats.resolutions
              | None -> 0
            in
            Metrics.Table.add_rows table
              [ [ "pce bypasses";
                  string_of_int stats.Mapsys.Cp_stats.bypasses ];
                [ "pce recoveries";
                  string_of_int stats.Mapsys.Cp_stats.recoveries ];
                [ "pull fallback"; string_of_int pull_resolved ] ]
        | None -> ());
        List.iter
          (fun (cause, n) ->
            Metrics.Table.add_row table
              [ "drop: " ^ cause; string_of_int n ])
          (Experiments.Harness.drop_causes r);
        Metrics.Table.print table
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a workload described by a scenario file and print a summary.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Scenario description file; its 'cp' key is ignored.")
  in
  let run file =
    match Core.Scenario_file.load file with
    | Error message ->
        Printf.eprintf "%s: %s\n" file message;
        exit 1
    | Ok { Core.Scenario_file.config; workload } ->
        let table =
          Metrics.Table.create
            ~title:
              (Printf.sprintf "all control planes on %s" (Filename.basename file))
            ~columns:
              [ "cp"; "drops"; "failed"; "syn-retx"; "mean setup (ms)";
                "p95 setup (ms)"; "ctl msgs" ]
        in
        List.iter
          (fun (label, cp) ->
            let spec =
              { (Experiments.Harness.default_spec
                   { config with Core.Scenario.cp })
                with
                Experiments.Harness.flows = workload.Core.Scenario_file.flows;
                rate = workload.Core.Scenario_file.rate;
                zipf_alpha = workload.Core.Scenario_file.zipf_alpha;
                data_packets = `Fixed workload.Core.Scenario_file.data_packets;
                data_bytes = workload.Core.Scenario_file.data_bytes;
                hotspots =
                  Option.map
                    (fun d -> [ (d, 1.0) ])
                    workload.Core.Scenario_file.hotspot }
            in
            let r = Experiments.Harness.run ~label spec in
            Metrics.Table.add_row table
              [ label;
                string_of_int (Experiments.Harness.drops r);
                string_of_int r.Experiments.Harness.failed;
                string_of_int r.Experiments.Harness.syn_retransmissions;
                Metrics.Table.cell_ms
                  (Experiments.Harness.mean r.Experiments.Harness.setups);
                Metrics.Table.cell_ms
                  (Experiments.Harness.percentile_or_zero
                     r.Experiments.Harness.setups 95.0);
                string_of_int
                  (Mapsys.Cp_stats.message_total (Experiments.Harness.cp_stats r)) ])
          Experiments.Harness.standard_cps;
        Metrics.Table.print table
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run one scenario under every control plane and tabulate.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* obs                                                                 *)
(* ------------------------------------------------------------------ *)

let obs_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"JSONL event stream written by $(b,run --trace-out).")
  in
  let run file =
    let events, errors = Obs.Export.read_jsonl file in
    if events = [] && errors = [] then begin
      Printf.printf "%s: empty event stream\n" file;
      exit 0
    end;
    let bump tbl key =
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    in
    let kinds = Hashtbl.create 16 in
    let actors = Hashtbl.create 64 in
    let flows = Hashtbl.create 256 in
    let drops = Hashtbl.create 16 in
    let t_min = ref infinity and t_max = ref neg_infinity in
    List.iter
      (fun e ->
        bump kinds (Obs.Event.kind_name e.Obs.Event.kind);
        bump actors e.Obs.Event.actor;
        Option.iter (fun id -> Hashtbl.replace flows id ()) e.Obs.Event.flow;
        (match e.Obs.Event.kind with
        | Obs.Event.Packet_drop { cause } -> bump drops cause
        | _ -> ());
        t_min := Float.min !t_min e.Obs.Event.time;
        t_max := Float.max !t_max e.Obs.Event.time)
      events;
    let sorted tbl =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
    in
    let table =
      Metrics.Table.create
        ~title:(Printf.sprintf "event stream: %s" (Filename.basename file))
        ~columns:[ "metric"; "value" ]
    in
    Metrics.Table.add_rows table
      [ [ "events"; string_of_int (List.length events) ];
        [ "parse errors"; string_of_int (List.length errors) ];
        [ "time span (s)";
          if events = [] then "-"
          else Printf.sprintf "%.6f .. %.6f" !t_min !t_max ];
        [ "actors"; string_of_int (Hashtbl.length actors) ];
        [ "distinct flows"; string_of_int (Hashtbl.length flows) ] ];
    List.iter
      (fun (kind, n) ->
        Metrics.Table.add_row table [ "kind: " ^ kind; string_of_int n ])
      (sorted kinds);
    Metrics.Table.print table;
    (* Per-cause drop breakdown: the JSONL cause strings are the typed
       {!Netsim.Telemetry.drop_cause} labels, so streams from older
       builds that predate the enum are flagged rather than dropped. *)
    let total_drops = Hashtbl.fold (fun _ n acc -> acc + n) drops 0 in
    if total_drops > 0 then begin
      let drop_table =
        Metrics.Table.create ~title:"drop attribution"
          ~columns:[ "cause"; "count"; "share"; "typed" ]
      in
      List.iter
        (fun (cause, n) ->
          Metrics.Table.add_row drop_table
            [ cause; string_of_int n;
              Metrics.Table.cell_pct
                (float_of_int n /. float_of_int total_drops);
              (match Netsim.Telemetry.drop_cause_of_label cause with
              | Some _ -> "yes"
              | None -> "NO (unknown label)") ])
        (sorted drops);
      Metrics.Table.print drop_table
    end;
    List.iter
      (fun (line, message) ->
        Printf.eprintf "%s:%d: unparseable event: %s\n" file line message)
      errors;
    if errors <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:"Summarise an exported JSONL event stream (counts by kind, \
             actors, flows, drops, time span).")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let telemetry_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Scenario description file (see lib/core/scenario_file.mli).")
  in
  let format =
    Arg.(value & opt (enum [ ("table", `Table); ("json", `Json);
                             ("csv", `Csv) ]) `Table
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,table) (rendered report), $(b,json) \
                   (full snapshot), or $(b,csv) (tables plus windowed \
                   series).")
  in
  let window =
    Arg.(value & opt float 1.0 & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Sliding-window slot length in simulated seconds.")
  in
  let slots =
    Arg.(value & opt int 60 & info [ "slots" ] ~docv:"N"
           ~doc:"Ring size: the window covers N slots.")
  in
  let topk =
    Arg.(value & opt int 32 & info [ "topk" ] ~docv:"K"
           ~doc:"Space-Saving sketch capacity for EID/flow heavy hitters.")
  in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Also write Chrome-trace counter events (provider load per \
                 window) to FILE; open in Perfetto.")
  in
  let series =
    Arg.(value & flag & info [ "series" ]
           ~doc:"Include the retained per-provider windowed series (json \
                 embeds it; table prints a per-window listing).")
  in
  let run file format window slots topk chrome series =
    if window <= 0.0 || slots < 1 || topk < 1 then begin
      prerr_endline "--window, --slots and --topk must be positive";
      exit 2
    end;
    match Core.Scenario_file.load file with
    | Error message ->
        Printf.eprintf "%s: %s\n" file message;
        exit 1
    | Ok { Core.Scenario_file.config; workload } ->
        let config =
          { config with
            Core.Scenario.telemetry =
              Some { Netsim.Telemetry.window_s = window; slots; topk } }
        in
        let spec =
          { (Experiments.Harness.default_spec config) with
            Experiments.Harness.flows = workload.Core.Scenario_file.flows;
            rate = workload.Core.Scenario_file.rate;
            zipf_alpha = workload.Core.Scenario_file.zipf_alpha;
            data_packets = `Fixed workload.Core.Scenario_file.data_packets;
            data_bytes = workload.Core.Scenario_file.data_bytes;
            hotspots =
              Option.map
                (fun d -> [ (d, 1.0) ])
                workload.Core.Scenario_file.hotspot }
        in
        let r = Experiments.Harness.run spec in
        let dataplane =
          Core.Scenario.dataplane r.Experiments.Harness.scenario
        in
        (match format with
        | `Json ->
            print_endline (Obs.Json.to_string
                             (Obs.Telemetry.json_snapshot ~series ()))
        | `Csv ->
            List.iter
              (fun table -> print_string (Metrics.Table.to_csv table))
              (Obs.Telemetry.tables ());
            if series then print_string (Obs.Telemetry.series_csv ())
        | `Table ->
            List.iter Metrics.Table.print (Obs.Telemetry.tables ());
            (* Occupancy gauges ride the same row producers the scenario
               registers in its metrics registry, so this report and the
               exporter/`obs` view cannot disagree. *)
            let gauges =
              Metrics.Table.create ~title:"map-cache / flow-table gauges"
                ~columns:[ "gauge"; "value" ]
            in
            List.iter
              (fun (prefix, rows) ->
                List.iter
                  (fun (name, v) ->
                    Metrics.Table.add_row gauges
                      [ prefix ^ "." ^ name; Metrics.Table.cell_float v ])
                  rows)
              [ ("cache", Core.Scenario.cache_gauge_rows dataplane);
                ("flows", Core.Scenario.flow_gauge_rows dataplane) ];
            Metrics.Table.print gauges;
            if series then print_string (Obs.Telemetry.series_csv ()));
        (match chrome with
        | Some out ->
            Obs.Telemetry.write_chrome_trace ~file:out ();
            Printf.eprintf "wrote %s\n" out
        | None -> ())
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:"Run a scenario-file workload with the telemetry plane enabled \
             and report per-provider/per-node traffic, TE balance (shares, \
             Jain index), drop attribution and heavy hitters.")
    Term.(const run $ file $ format $ window $ slots $ topk $ chrome $ series)

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Split a multi-run JSONL stream at its run_start markers.  Streams
   written before the markers existed fall into one unlabelled
   segment. *)
let segment_runs events =
  let rec go label current_rev acc = function
    | [] -> List.rev ((label, List.rev current_rev) :: acc)
    | e :: rest -> (
        match e.Obs.Event.kind with
        | Obs.Event.Run_start { label = next } ->
            go next [] ((label, List.rev current_rev) :: acc) rest
        | _ -> go label (e :: current_rev) acc rest)
  in
  match go "(unlabelled)" [] [] events with
  | ("(unlabelled)", []) :: (_ :: _ as rest) -> rest
  | segments -> segments

let spans_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"JSONL event stream written by $(b,run --trace-out).")
  in
  let format =
    Arg.(value & opt (enum [ ("table", `Table); ("json", `Json); ("csv", `Csv) ])
           `Table
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,table), $(b,json) or $(b,csv).")
  in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Also write the span trees as a Chrome trace_event file \
                 (open in Perfetto or chrome://tracing).")
  in
  let run file format chrome =
    let events, errors = Obs.Export.read_jsonl file in
    if events = [] && errors = [] then begin
      Printf.printf "%s: empty event stream\n" file;
      exit 0
    end;
    let segments = segment_runs events in
    let segment_end evs =
      List.fold_left (fun acc e -> Float.max acc e.Obs.Event.time) 0.0 evs
    in
    let reports =
      List.map
        (fun (label, evs) ->
          let lat = Obs.Latency.create () in
          List.iter (Obs.Latency.feed lat) evs;
          Obs.Latency.close lat ~now:(segment_end evs);
          (label, Obs.Latency.summary lat))
        segments
    in
    (match chrome with
    | None -> ()
    | Some out ->
        let trees =
          List.map
            (fun (label, evs) ->
              let b = Obs.Span.create_builder () in
              List.iter (Obs.Span.feed b) evs;
              Obs.Span.finish b ~now:(segment_end evs);
              (label, Obs.Span.roots b))
            segments
        in
        Obs.Span.write_chrome_trace ~file:out trees);
    (match format with
    | `Json ->
        let json =
          Obs.Json.Obj
            [ ("file", Obs.Json.String file);
              ("parse_errors", Obs.Json.Int (List.length errors));
              ( "runs",
                Obs.Json.List
                  (List.map
                     (fun (label, summary) ->
                       Obs.Json.Obj
                         (("run", Obs.Json.String label)
                         :: List.map
                              (fun (k, v) -> (k, Obs.Json.Float v))
                              summary))
                     reports) ) ]
        in
        print_endline (Obs.Json.to_string json)
    | `Table | `Csv ->
        let table =
          Metrics.Table.create
            ~title:
              (Printf.sprintf "latency decomposition: %s"
                 (Filename.basename file))
            ~columns:("metric" :: List.map fst reports)
        in
        let metric_names =
          match reports with (_, s) :: _ -> List.map fst s | [] -> []
        in
        List.iter
          (fun name ->
            Metrics.Table.add_row table
              (name
              :: List.map
                   (fun (_, summary) ->
                     let v = List.assoc name summary in
                     if Float.is_integer v && Float.abs v < 1e9 then
                       Printf.sprintf "%.0f" v
                     else Printf.sprintf "%.6f" v)
                   reports))
          metric_names;
        (match format with
        | `Csv -> print_string (Metrics.Table.to_csv table)
        | _ -> Metrics.Table.print table));
    (* stderr: stdout must stay machine-readable under --format json/csv *)
    Option.iter (Printf.eprintf "(chrome trace written to %s)\n") chrome;
    List.iter
      (fun (line, message) ->
        Printf.eprintf "%s:%d: unparseable event: %s\n" file line message)
      errors;
    if errors <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:"Stitch an exported event stream into causal span trees and \
             report each run's setup-latency decomposition (T_DNS, \
             T_map_resol, first-packet wait, handshake) in the paper's \
             terms.")
    Term.(const run $ file $ format $ chrome)

(* ------------------------------------------------------------------ *)
(* connect                                                             *)
(* ------------------------------------------------------------------ *)

let cp_of_string = function
  | "pull-drop" -> Some Core.Scenario.Cp_pull_drop
  | "pull-queue" -> Some (Core.Scenario.Cp_pull_queue 32)
  | "pull-smr" -> Some (Core.Scenario.Cp_pull_smr 32)
  | "pull-detour" -> Some Core.Scenario.Cp_pull_detour
  | "nerd" -> Some Core.Scenario.Cp_nerd
  | "cons" -> Some Core.Scenario.Cp_cons
  | "msmr" -> Some Core.Scenario.Cp_msmr
  | "pce" -> Some (Core.Scenario.Cp_pce Core.Pce_control.default_options)
  | _ -> None

let connect_cmd =
  let cp =
    Arg.(value & opt string "pce" & info [ "cp" ] ~docv:"CP"
           ~doc:"Control plane: pce, pull-drop, pull-queue, pull-detour, nerd, cons, msmr.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the event trace.")
  in
  let cp_loss =
    Arg.(value & opt float 0.0 & info [ "cp-loss" ] ~docv:"P"
           ~doc:"Control-plane message loss probability (0 disables the \
                 fault model entirely).")
  in
  let cp_retries =
    Arg.(value & opt int 3 & info [ "cp-retries" ] ~docv:"N"
           ~doc:"Maximum map-request retransmissions before giving up.")
  in
  let cp_rto =
    Arg.(value & opt float 0.5 & info [ "cp-rto" ] ~docv:"SECONDS"
           ~doc:"Initial retransmission timeout (doubles per attempt).")
  in
  let cache_policy =
    Arg.(value & opt string "lru" & info [ "cache-policy" ] ~docv:"POLICY"
           ~doc:"Map-cache eviction policy: lru, lfu or ttl-hybrid.")
  in
  let pce_crash =
    Arg.(value & opt_all string [] & info [ "pce-crash" ] ~docv:"DOMAIN:T0:T1"
           ~doc:"Crash the PCE of $(i,DOMAIN) from $(i,T0) to $(i,T1) \
                 seconds of simulated time (repeatable; use $(b,inf) for \
                 a PCE that never restarts).  Enables the node-lifecycle \
                 fault layer: DNS answers bypass dead PCEs after a \
                 watchdog and cache misses degrade to pull resolution.")
  in
  let attack_spoof =
    Arg.(value & opt float 0.0 & info [ "attack-spoof" ] ~docv:"P"
           ~doc:"Probability a map-request is raced by a forged reply \
                 (0 disables the adversary layer entirely).")
  in
  let attack_replay =
    Arg.(value & opt float 0.0 & info [ "attack-replay" ] ~docv:"P"
           ~doc:"Probability a stale captured map-reply is replayed at a \
                 resolution.")
  in
  let attack_dns_poison =
    Arg.(value & opt float 0.0 & info [ "attack-dns-poison" ] ~docv:"P"
           ~doc:"Probability a final DNS answer is raced by a forged \
                 record.")
  in
  let auth_nonce =
    Arg.(value & flag & info [ "auth-nonce" ]
           ~doc:"Verify the map-reply nonce echo (rejects blind forgery \
                 and replay).")
  in
  let auth_sig =
    Arg.(value & flag & info [ "auth-sig" ]
           ~doc:"Require signed map-replies; every legitimate reply pays \
                 the verification CPU cost.")
  in
  let auth_dnssec =
    Arg.(value & flag & info [ "auth-dnssec" ]
           ~doc:"Validate DNS answers (forged records are discarded).")
  in
  let glean_cap =
    Arg.(value & opt (some int) None & info [ "glean-cap" ] ~docv:"N"
           ~doc:"Bound the gleaned-entry population per map-cache (and \
                 the pull glean tables).")
  in
  let run cp_name verbose cp_loss cp_retries cp_rto cache_policy pce_crash
      attack_spoof attack_replay attack_dns_poison auth_nonce auth_sig
      auth_dnssec glean_cap =
    let cp =
      match cp_of_string cp_name with
      | Some cp -> cp
      | None ->
          Printf.eprintf "unknown control plane: %s\n" cp_name;
          exit 1
    in
    let cache_policy =
      match Lispdp.Map_cache.policy_of_string cache_policy with
      | Some p -> p
      | None ->
          Printf.eprintf
            "unknown cache policy: %s (expected lru, lfu or ttl-hybrid)\n"
            cache_policy;
          exit 1
    in
    if cp_loss < 0.0 || cp_loss > 1.0 then begin
      Printf.eprintf "--cp-loss must be in [0, 1]\n"; exit 1
    end;
    if cp_retries < 0 then begin
      Printf.eprintf "--cp-retries must be non-negative\n"; exit 1
    end;
    if cp_rto <= 0.0 then begin
      Printf.eprintf "--cp-rto must be positive\n"; exit 1
    end;
    let crash_windows =
      List.map
        (fun spec ->
          let bad reason =
            Printf.eprintf "--pce-crash %s: %s\n" spec reason;
            exit 1
          in
          match String.split_on_char ':' spec with
          | [ d; t0; t1 ] -> (
              match
                (int_of_string_opt d, float_of_string_opt t0,
                 float_of_string_opt t1)
              with
              | Some domain, Some from_, Some until ->
                  if domain < 0 then bad "negative domain id"
                  else if from_ < 0.0 then bad "negative crash time"
                  else if until <= from_ then
                    bad
                      (Printf.sprintf
                         "inverted window (recovers at %g, crashes at %g)"
                         until from_)
                  else (Netsim.Lifecycle.Pce domain, from_, until)
              | _, _, _ -> bad "expected DOMAIN:T0:T1 (numbers)")
          | _ -> bad "expected DOMAIN:T0:T1")
        pce_crash
    in
    let open Core in
    (* Loss strictly opt-in: no profile at all unless --cp-loss > 0, so
       the default run stays bit-identical to the lossless simulator. *)
    let cp_faults =
      if cp_loss > 0.0 then
        Some
          { Scenario.default_cp_faults with
            Scenario.cp_loss; cp_retries; cp_rto }
      else None
    in
    (* The node-fault layer follows the same opt-in rule: no lifecycle
       exists at all unless a crash window was requested. *)
    let node_faults =
      match crash_windows with
      | [] -> None
      | windows ->
          Some { Scenario.default_node_faults with Scenario.node_windows = windows }
    in
    List.iter
      (fun (flag, p) ->
        if p < 0.0 || p > 1.0 then begin
          Printf.eprintf "--%s must be in [0, 1]\n" flag;
          exit 1
        end)
      [ ("attack-spoof", attack_spoof); ("attack-replay", attack_replay);
        ("attack-dns-poison", attack_dns_poison) ];
    (* Like the fault layers: no adversary (and no countermeasure
       profile) exists at all unless explicitly requested. *)
    let attack =
      if attack_spoof > 0.0 || attack_replay > 0.0 || attack_dns_poison > 0.0
      then
        Some
          { Scenario.default_attack with
            Scenario.atk_spoof = attack_spoof; atk_replay = attack_replay;
            atk_dns_poison = attack_dns_poison }
      else None
    in
    let auth =
      if auth_nonce || auth_sig || auth_dnssec || glean_cap <> None then
        Some
          { Scenario.default_auth with
            Scenario.auth_nonce; auth_sig; auth_dnssec;
            auth_glean_cap = glean_cap }
      else None
    in
    let scenario =
      Scenario.build
        { Scenario.default_config with
          Scenario.cp; cp_faults; node_faults; cache_policy; attack; auth }
    in
    if verbose then Netsim.Trace.set_enabled (Scenario.trace scenario) true;
    let internet = Scenario.internet scenario in
    let flow =
      Nettypes.Flow.create
        ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
        ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
        ~src_port:50000 ()
    in
    let c = Scenario.open_connection scenario ~flow ~data_packets:3 () in
    Scenario.run scenario;
    if verbose then Format.printf "%a@." Netsim.Trace.pp (Scenario.trace scenario);
    let counters = Lispdp.Dataplane.counters (Scenario.dataplane scenario) in
    Format.printf "control plane : %s@." (Scenario.cp_label cp);
    Format.printf "T_DNS         : %.1f ms@."
      (Option.value ~default:nan c.Scenario.dns_time *. 1e3);
    Format.printf "handshake     : %.1f ms@."
      (Option.value ~default:nan
         (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time)
      *. 1e3);
    Format.printf "total setup   : %.1f ms@."
      (Option.value ~default:nan (Scenario.total_setup_time c) *. 1e3);
    Format.printf "drops         : %d@." counters.Lispdp.Dataplane.dropped;
    List.iter
      (fun (cause, n) -> Format.printf "  %-28s %d@." cause n)
      (Lispdp.Dataplane.drop_causes (Scenario.dataplane scenario));
    (match Scenario.faults scenario with
    | None -> ()
    | Some faults ->
        let stats = Scenario.cp_stats scenario in
        Format.printf "cp losses     : %d@." (Netsim.Faults.losses faults);
        Format.printf "cp retx       : %d@."
          stats.Mapsys.Cp_stats.retransmissions;
        Format.printf "cp timeouts   : %d@." stats.Mapsys.Cp_stats.timeouts);
    (match Scenario.lifecycle scenario with
    | None -> ()
    | Some _ ->
        let stats = Scenario.cp_stats scenario in
        Format.printf "pce bypasses  : %d@." stats.Mapsys.Cp_stats.bypasses;
        Format.printf "pce recoveries: %d@." stats.Mapsys.Cp_stats.recoveries;
        match Scenario.fallback_pull scenario with
        | None -> ()
        | Some pull ->
            Format.printf "pull fallback : %d resolution(s)@."
              (Mapsys.Pull.stats pull).Mapsys.Cp_stats.resolutions);
    (match Scenario.adversary scenario with
    | None -> ()
    | Some adv ->
        let stats = Scenario.cp_stats scenario in
        let dns_counters = Dnssim.System.counters (Scenario.dns scenario) in
        Format.printf "forged replies: %d (%d accepted)@."
          (Netsim.Adversary.forged_replies adv)
          stats.Mapsys.Cp_stats.spoofed_accepted;
        Format.printf "replayed      : %d (%d accepted)@."
          (Netsim.Adversary.replayed_replies adv)
          stats.Mapsys.Cp_stats.replayed_accepted;
        Format.printf "dns poisoned  : %d (%d accepted)@."
          (Netsim.Adversary.poisoned_answers adv)
          dns_counters.Dnssim.System.poisoned_accepted)
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Run one measured DNS-then-TCP connection on the Figure-1 scenario.")
    Term.(
      const run $ cp $ verbose $ cp_loss $ cp_retries $ cp_rto $ cache_policy
      $ pce_crash $ attack_spoof $ attack_replay $ attack_dns_poison
      $ auth_nonce $ auth_sig $ auth_dnssec $ glean_cap)

(* ------------------------------------------------------------------ *)
(* prof                                                                *)
(* ------------------------------------------------------------------ *)

let prof_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment ids (see $(b,list)).")
  in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Also write the self-profile as a Chrome trace_event file \
                 (open in Perfetto or chrome://tracing), one process per \
                 experiment.")
  in
  let run ids chrome =
    let entries =
      List.map
        (fun id ->
          match Experiments.Exp_index.find id with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment id: %s (try 'list')\n" id;
              exit 1)
        ids
    in
    if chrome <> None then Obs.Prof.set_record_intervals true;
    let ph_exp = Obs.Prof.phase "experiment" in
    let labelled =
      List.map
        (fun e ->
          Printf.printf ">>> [%s] %s\n%!" e.Experiments.Exp_index.exp_id
            e.Experiments.Exp_index.exp_title;
          Obs.Prof.start ();
          let gc0 = Obs.Prof.gc_snapshot () in
          (match
             Obs.Prof.with_phase ph_exp e.Experiments.Exp_index.print
           with
          | () -> ()
          | exception ex ->
              Obs.Prof.stop ();
              raise ex);
          Obs.Prof.stop ();
          let report = Obs.Prof.report () in
          let gc = Obs.Prof.gc_since gc0 in
          let ivs = Obs.Prof.intervals () in
          print_newline ();
          Format.printf "%a@." Obs.Prof.pp_report report;
          Printf.printf "  coverage: %.2f%% of %.3fs wall\n"
            (100.0 *. Obs.Prof.coverage report)
            report.Obs.Prof.r_wall_s;
          List.iter
            (fun (name, v) ->
              if Float.is_integer v then Printf.printf "  gc.%s: %.0f\n" name v
              else Printf.printf "  gc.%s: %.1f\n" name v)
            gc;
          print_newline ();
          ( Printf.sprintf "%s %s" e.Experiments.Exp_index.exp_id
              e.Experiments.Exp_index.exp_title,
            ivs ))
        entries
    in
    match chrome with
    | None -> ()
    | Some file ->
        Obs.Prof.write_chrome_trace ~file labelled;
        Printf.printf "(chrome trace written to %s)\n" file
  in
  Cmd.v
    (Cmd.info "prof"
       ~doc:"Run experiments in-process with the self-profiler enabled and \
             print the per-phase breakdown (engine dispatch, DNS, map \
             resolution, PCE push, dataplane, trace emission) plus GC \
             telemetry.")
    Term.(const run $ ids $ chrome)

let bench_engine_cmd =
  let events =
    Arg.(value & opt int 2_000_000 & info [ "events" ] ~docv:"N"
           ~doc:"Events to dispatch per measurement.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
           ~doc:"Shard count for the Domain-sharded measurement.")
  in
  let run events shards =
    if events < 1 then begin
      prerr_endline "--events must be positive";
      exit 2
    end;
    if shards < 1 then begin
      prerr_endline "--shards must be positive";
      exit 2
    end;
    let single = Experiments.Bench_micro.engine_dispatch_single ~events () in
    let sharded =
      Experiments.Bench_micro.engine_dispatch_sharded ~shards ~events ()
    in
    Printf.printf "engine dispatch, single domain:   %8.2fM events/s\n"
      (single /. 1e6);
    Printf.printf "engine dispatch, %2d shards:       %8.2fM events/s\n" shards
      (sharded /. 1e6)
  in
  Cmd.v
    (Cmd.info "bench-engine"
       ~doc:"Measure raw event-engine dispatch throughput: self-scheduling \
             timer streams on a single engine and on a Domain-sharded pool \
             (one engine per shard, deterministic per-shard results).")
    Term.(const run $ events $ shards)

let () =
  let info =
    Cmd.info "repro_cli" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Advantages of a PCE-based Control Plane for LISP' \
         (CoNEXT 2008)."
  in
  exit (Cmd.eval (Cmd.group info
       [ list_cmd; run_cmd; trace_cmd; topology_cmd; connect_cmd; simulate_cmd;
         compare_cmd; obs_cmd; telemetry_cmd; spans_cmd; prof_cmd;
         bench_engine_cmd ]))
